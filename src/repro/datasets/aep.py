"""Closed-domain "Experience Platform" dataset.

A synthetic stand-in for the paper's in-house Adobe Experience Platform
question traffic: a marketing-analytics star schema whose identifiers are
warehouse-style (``hkg_dim_segment``), whose users speak platform jargon
("audience" for segment, "live" for active, "activated to" for the
activation fact join), and whose questions are phrased by non-technical
marketers. This reproduces the paper's central contrast with SPIDER:
closed-domain vocabulary + vague phrasing → far lower zero-shot accuracy.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.datasets.base import Benchmark, Demonstration, Example
from repro.datasets.names import CURRENT_YEAR, MODEL_DEFAULT_YEAR, MONTH_NAMES
from repro.errors import DatasetError
from repro.sql.engine import Database
from repro.sql.schema import Column, DatabaseSchema, ForeignKey, Table
from repro.sql.types import DataType

AEP_DB_ID = "experience_platform"

#: Jargon glossary the RAG demonstrations teach (user phrase → schema ref).
#: Values are table names, or "column=value" filters.
AEP_GLOSSARY: dict[str, str] = {
    "audience": "hkg_dim_segment",
    "audiences": "hkg_dim_segment",
    "live": "status=active",
    "enabled": "status=active",
    "paused": "status=inactive",
}

_SEGMENT_NAMES = [
    "ABC", "Loyalty Shoppers", "Cart Abandoners", "Holiday Buyers",
    "Newsletter Fans", "High Spenders", "Weekend Browsers", "VIP Members",
    "Trial Users", "Lapsed Customers", "Mobile First", "Early Adopters",
    "Frequent Flyers", "Gift Givers", "Deal Hunters", "Premium Upgraders",
    "Win Back", "New Parents", "Student Offers", "Local Events",
]

_DESTINATION_NAMES = [
    "Email Hub", "CRM Sync", "Ad Connect", "Webhook Relay", "SMS Gateway",
    "Push Notify", "Data Lake Export", "Social Sync", "Survey Tool",
    "Loyalty Engine",
]

_DATASET_NAMES = [
    "Web Events", "Purchase History", "Profile Snapshot", "Email Engagement",
    "Call Center Logs", "Mobile Sessions", "Loyalty Ledger", "Ad Impressions",
    "Store Visits", "Support Tickets",
]

_JOURNEY_NAMES = [
    "Welcome Series", "Cart Recovery", "Birthday Offer", "Win Back Flow",
    "Upsell Path", "Renewal Reminder", "Onboarding Tour", "Feedback Loop",
]


def build_aep_database(seed: int = 7041) -> Database:
    """Construct and populate the Experience Platform database."""
    rng = random.Random(seed)
    schema = DatabaseSchema(
        AEP_DB_ID,
        [
            Table(
                name="hkg_dim_segment",
                nl_name="segment",
                synonyms=("audience",),
                columns=[
                    Column("segmentid", DataType.INTEGER, "segment id", primary_key=True),
                    Column("segmentname", DataType.TEXT, "segment name"),
                    Column("description", DataType.TEXT, "description"),
                    Column("status", DataType.TEXT, "status"),
                    Column("createdtime", DataType.DATE, "created time"),
                    Column("profilecount", DataType.INTEGER, "profile count"),
                ],
            ),
            Table(
                name="hkg_dim_destination",
                nl_name="destination",
                columns=[
                    Column("destinationid", DataType.INTEGER, "destination id", primary_key=True),
                    Column("destinationname", DataType.TEXT, "destination name"),
                    Column("destinationtype", DataType.TEXT, "destination type"),
                    Column("status", DataType.TEXT, "status"),
                    Column("createdtime", DataType.DATE, "created time"),
                ],
            ),
            Table(
                name="hkg_fact_activation",
                nl_name="activation",
                columns=[
                    Column("activationid", DataType.INTEGER, "activation id", primary_key=True),
                    Column("segmentid", DataType.INTEGER, "segment id"),
                    Column("destinationid", DataType.INTEGER, "destination id"),
                    Column("activationdate", DataType.DATE, "activation date"),
                    Column("activationstatus", DataType.TEXT, "activation status"),
                ],
                foreign_keys=[
                    ForeignKey("segmentid", "hkg_dim_segment", "segmentid"),
                    ForeignKey("destinationid", "hkg_dim_destination", "destinationid"),
                ],
            ),
            Table(
                name="hkg_dim_dataset",
                nl_name="dataset",
                columns=[
                    Column("datasetid", DataType.INTEGER, "dataset id", primary_key=True),
                    Column("datasetname", DataType.TEXT, "dataset name"),
                    Column("datasettype", DataType.TEXT, "dataset type"),
                    Column("recordcount", DataType.INTEGER, "record count"),
                    Column("status", DataType.TEXT, "status"),
                    Column("createdtime", DataType.DATE, "created time"),
                ],
            ),
            Table(
                name="hkg_fact_ingestion",
                nl_name="ingestion",
                columns=[
                    Column("ingestionid", DataType.INTEGER, "ingestion id", primary_key=True),
                    Column("datasetid", DataType.INTEGER, "dataset id"),
                    Column("ingestiondate", DataType.DATE, "ingestion date"),
                    Column("rowsingested", DataType.INTEGER, "rows ingested"),
                    Column("failedrecords", DataType.INTEGER, "failed records"),
                ],
                foreign_keys=[
                    ForeignKey("datasetid", "hkg_dim_dataset", "datasetid"),
                ],
            ),
            Table(
                name="hkg_dim_journey",
                nl_name="journey",
                columns=[
                    Column("journeyid", DataType.INTEGER, "journey id", primary_key=True),
                    Column("journeyname", DataType.TEXT, "journey name"),
                    Column("description", DataType.TEXT, "description"),
                    Column("status", DataType.TEXT, "status"),
                    Column("createdtime", DataType.DATE, "created time"),
                ],
            ),
        ],
    )
    db = Database(schema)

    def date_in(year: int, month: int) -> str:
        return f"{year:04d}-{month:02d}-{rng.randint(1, 28):02d}"

    def spread_date() -> str:
        return date_in(rng.choice((2023, 2023, 2024, 2024)), rng.randint(1, 12))

    statuses = ("active", "active", "active", "inactive", "draft")
    for index, name in enumerate(_SEGMENT_NAMES, start=1):
        db.data("hkg_dim_segment").insert(
            (
                index,
                name,
                f"segment targeting {name.lower()} profiles",
                rng.choice(statuses),
                spread_date(),
                rng.randint(500, 250000),
            )
        )
    for index, name in enumerate(_DESTINATION_NAMES, start=1):
        db.data("hkg_dim_destination").insert(
            (
                index,
                name,
                rng.choice(("email", "crm", "ad_platform", "webhook")),
                rng.choice(statuses),
                spread_date(),
            )
        )
    activation_id = 1
    for segment_id in range(1, len(_SEGMENT_NAMES) + 1):
        for destination_id in rng.sample(
            range(1, len(_DESTINATION_NAMES) + 1), rng.randint(0, 4)
        ):
            db.data("hkg_fact_activation").insert(
                (
                    activation_id,
                    segment_id,
                    destination_id,
                    spread_date(),
                    rng.choice(("success", "success", "failed")),
                )
            )
            activation_id += 1
    for index, name in enumerate(_DATASET_NAMES, start=1):
        db.data("hkg_dim_dataset").insert(
            (
                index,
                name,
                rng.choice(("profile", "event", "lookup")),
                rng.randint(1000, 5000000),
                rng.choice(statuses),
                spread_date(),
            )
        )
    ingestion_id = 1
    for dataset_id in range(1, len(_DATASET_NAMES) + 1):
        for _ in range(rng.randint(2, 6)):
            db.data("hkg_fact_ingestion").insert(
                (
                    ingestion_id,
                    dataset_id,
                    spread_date(),
                    rng.randint(100, 90000),
                    rng.randint(0, 400),
                )
            )
            ingestion_id += 1
    for index, name in enumerate(_JOURNEY_NAMES, start=1):
        db.data("hkg_dim_journey").insert(
            (
                index,
                name,
                f"journey automating the {name.lower()} campaign",
                rng.choice(statuses),
                spread_date(),
            )
        )
    return db


_ENTITY_TABLES = {
    "segment": ("hkg_dim_segment", "segmentname"),
    "destination": ("hkg_dim_destination", "destinationname"),
    "dataset": ("hkg_dim_dataset", "datasetname"),
    "journey": ("hkg_dim_journey", "journeyname"),
}


class AepGenerator:
    """Generates the AEP question traffic and demonstration pool.

    Args:
        seed: RNG seed.
        n_questions: Size of the generated traffic (the paper derives its
            54-example error set from real traffic; we generate enough
            questions that the Assistant's error set lands in that range).
        clean_fraction: Fraction of traffic phrased without jargon traps.
    """

    def __init__(
        self,
        seed: int = 7041,
        n_questions: int = 160,
        clean_fraction: float = 0.20,
    ) -> None:
        self._seed = seed
        self._n_questions = n_questions
        self._clean_fraction = clean_fraction

    def generate(self) -> tuple[Benchmark, list[Demonstration]]:
        """Build (traffic benchmark, demonstration pool)."""
        database = build_aep_database(self._seed)
        rng = random.Random(self._seed + 1)
        examples: list[Example] = []
        attempts = 0
        while len(examples) < self._n_questions and attempts < self._n_questions * 50:
            attempts += 1
            if rng.random() < self._clean_fraction:
                built = self._make_clean(rng, database)
            else:
                built = self._make_trapped(rng, database)
            if built is None:
                continue
            question, gold, hardness, trap_kind, trap_meta = built
            foil = trap_meta.get("foil_sql")
            if foil and not _results_differ(database, gold, foil):
                continue
            examples.append(
                Example(
                    example_id=f"aep-{len(examples):04d}",
                    db_id=AEP_DB_ID,
                    question=question,
                    gold_sql=gold,
                    hardness=hardness,
                    trap_kind=trap_kind,
                    trap_meta=trap_meta,
                )
            )
        if len(examples) < self._n_questions:
            raise DatasetError("could not generate enough AEP questions")
        benchmark = Benchmark(
            name="experience_platform",
            databases={AEP_DB_ID: database},
            examples=examples,
        )
        return benchmark, self._demonstrations()

    # -- clean questions ---------------------------------------------------------

    def _make_clean(self, rng: random.Random, db: Database):
        entity = rng.choice(sorted(_ENTITY_TABLES))
        table, name_col = _ENTITY_TABLES[entity]
        template = rng.randrange(4)
        if template == 0:
            return (
                f"How many {entity}s are there?",
                f"SELECT COUNT(*) FROM {table}",
                "easy",
                None,
                {},
            )
        if template == 1:
            return (
                f"List the names of all {entity}s.",
                f"SELECT {name_col} FROM {table}",
                "easy",
                None,
                {},
            )
        if template == 2:
            month = rng.randint(1, 12)
            year = rng.choice((2023, CURRENT_YEAR))
            start, end = _month_range(year, month)
            return (
                f"How many {entity}s were created in "
                f"{MONTH_NAMES[month - 1]} {year}?",
                (
                    f"SELECT COUNT(*) FROM {table} WHERE createdtime >= "
                    f"'{start}' AND createdtime < '{end}'"
                ),
                "medium",
                None,
                {},
            )
        if entity == "segment":
            return (
                "What is the total profile count of all segments?",
                "SELECT SUM(profilecount) FROM hkg_dim_segment",
                "medium",
                None,
                {},
            )
        if entity == "dataset":
            return (
                "What is the maximum record count of all datasets?",
                "SELECT MAX(recordcount) FROM hkg_dim_dataset",
                "medium",
                None,
                {},
            )
        return None

    # -- trapped questions ----------------------------------------------------------

    def _make_trapped(self, rng: random.Random, db: Database):
        builders = [
            (self._t_jargon_table, 0.16),
            (self._t_jargon_value, 0.12),
            (self._t_jargon_join, 0.10),
            (self._t_default_year, 0.30),
            (self._t_missing_filter, 0.08),
            (self._t_extra_description, 0.08),
            (self._t_multi, 0.07),
        ]
        weights = [w for _b, w in builders]
        builder = rng.choices([b for b, _w in builders], weights=weights, k=1)[0]
        return builder(rng, db)

    def _t_jargon_table(self, rng: random.Random, db: Database):
        """'Audiences' means segments — pure closed-domain vocabulary."""
        variant = rng.randrange(3)
        meta = {"jargon": "audiences", "table": "hkg_dim_segment"}
        if variant == 0:
            return (
                "How many audiences are there?",
                "SELECT COUNT(*) FROM hkg_dim_segment",
                "easy",
                "jargon_table",
                dict(meta, foil_sql="SELECT COUNT(*) FROM hkg_dim_dataset"),
            )
        if variant == 1:
            return (
                "List the names of all audiences.",
                "SELECT segmentname FROM hkg_dim_segment",
                "easy",
                "jargon_table",
                dict(meta, foil_sql="SELECT datasetname FROM hkg_dim_dataset"),
            )
        return (
            "What is the total profile count across our audiences?",
            "SELECT SUM(profilecount) FROM hkg_dim_segment",
            "medium",
            "jargon_table",
            dict(meta, foil_sql="SELECT COUNT(*) FROM hkg_dim_segment"),
        )

    def _t_jargon_value(self, rng: random.Random, db: Database):
        """'Live' means status = 'active' — closed-domain value vocabulary."""
        entity = rng.choice(("segment", "destination", "journey", "dataset"))
        table, name_col = _ENTITY_TABLES[entity]
        jargon = rng.choice(("live", "enabled"))
        if rng.random() < 0.5:
            question = f"How many {jargon} {entity}s do we have?"
            gold = f"SELECT COUNT(*) FROM {table} WHERE status = 'active'"
            foil = f"SELECT COUNT(*) FROM {table}"
        else:
            question = f"List the names of the {jargon} {entity}s."
            gold = f"SELECT {name_col} FROM {table} WHERE status = 'active'"
            foil = f"SELECT {name_col} FROM {table}"
        return (
            question,
            gold,
            "medium",
            "jargon_value",
            {
                "jargon": jargon,
                "column": "status",
                "value": "active",
                "foil_sql": foil,
            },
        )

    def _t_jargon_join(self, rng: random.Random, db: Database):
        """'Activated to' means a join through the activation fact table."""
        result = db.query(
            "SELECT segmentname FROM hkg_dim_segment WHERE segmentid IN "
            "(SELECT segmentid FROM hkg_fact_activation)"
        )
        if not result.rows:
            return None
        segment_name = str(rng.choice(result.rows)[0])
        escaped = segment_name.replace("'", "''")
        question = (
            f"Which destinations is the '{segment_name}' segment activated to?"
        )
        gold = (
            "SELECT T2.destinationname FROM hkg_fact_activation AS T1 "
            "JOIN hkg_dim_destination AS T2 "
            "ON T1.destinationid = T2.destinationid "
            "JOIN hkg_dim_segment AS T3 ON T1.segmentid = T3.segmentid "
            f"WHERE T3.segmentname = '{escaped}'"
        )
        return (
            question,
            gold,
            "hard",
            "jargon_join",
            {
                "jargon": "activated",
                "fact_table": "hkg_fact_activation",
                "segment_name": segment_name,
                "foil_sql": "SELECT destinationname FROM hkg_dim_destination",
            },
        )

    def _t_default_year(self, rng: random.Random, db: Database):
        """'Created in January' with no year — the user means the current one."""
        entity = rng.choice(("segment", "dataset", "journey", "destination"))
        table, _name_col = _ENTITY_TABLES[entity]
        noun = "audiences" if entity == "segment" and rng.random() < 0.6 else f"{entity}s"
        month = rng.randint(1, 12)
        start, end = _month_range(CURRENT_YEAR, month)
        question = (
            f"How many {noun} were created in {MONTH_NAMES[month - 1]}?"
        )
        gold = (
            f"SELECT COUNT(*) FROM {table} WHERE createdtime >= '{start}' "
            f"AND createdtime < '{end}'"
        )
        foil_start, foil_end = _month_range(MODEL_DEFAULT_YEAR, month)
        trap_meta = {
            "intended_year": CURRENT_YEAR,
            "assumed_year": MODEL_DEFAULT_YEAR,
            "month": month,
            "date_column": "createdtime",
            "foil_sql": (
                f"SELECT COUNT(*) FROM {table} WHERE createdtime >= "
                f"'{foil_start}' AND createdtime < '{foil_end}'"
            ),
        }
        if noun == "audiences":
            trap_meta["jargon"] = "audiences"
        return question, gold, "medium", "default_year", trap_meta

    def _t_missing_filter(self, rng: random.Random, db: Database):
        """'Ready to use' implies an org-specific status filter."""
        entity = rng.choice(("dataset", "journey"))
        table, name_col = _ENTITY_TABLES[entity]
        question = f"List the names of the {entity}s that are ready to use."
        gold = f"SELECT {name_col} FROM {table} WHERE status = 'active'"
        return (
            question,
            gold,
            "medium",
            "missing_filter",
            {
                "status_column": "status",
                "status_value": "active",
                "phrase": "ready to use",
                "foil_sql": f"SELECT {name_col} FROM {table}",
            },
        )

    def _t_extra_description(self, rng: random.Random, db: Database):
        """Asked to 'list the segments ...', the model adds descriptions."""
        entity = rng.choice(("segment", "journey"))
        table, name_col = _ENTITY_TABLES[entity]
        month = rng.randint(1, 12)
        year = rng.choice((2023, CURRENT_YEAR))
        start, end = _month_range(year, month)
        question = (
            f"List the {entity}s created in {MONTH_NAMES[month - 1]} {year}."
        )
        gold = (
            f"SELECT {name_col} FROM {table} WHERE createdtime >= '{start}' "
            f"AND createdtime < '{end}'"
        )
        return (
            question,
            gold,
            "medium",
            "extra_description",
            {
                "extra_column": "description",
                "foil_sql": gold.replace(
                    f"SELECT {name_col}", f"SELECT {name_col}, description", 1
                ),
            },
        )

    def _t_multi(self, rng: random.Random, db: Database):
        """Two planted errors: description verbosity plus the year default."""
        entity = rng.choice(("segment", "journey"))
        table, name_col = _ENTITY_TABLES[entity]
        noun = "audiences" if entity == "segment" else "journeys"
        month = rng.randint(1, 12)
        start, end = _month_range(CURRENT_YEAR, month)
        foil_start, foil_end = _month_range(MODEL_DEFAULT_YEAR, month)
        question = f"List the {noun} created in {MONTH_NAMES[month - 1]}."
        gold = (
            f"SELECT {name_col} FROM {table} WHERE createdtime >= '{start}' "
            f"AND createdtime < '{end}'"
        )
        foil = (
            f"SELECT {name_col}, description FROM {table} WHERE createdtime "
            f">= '{foil_start}' AND createdtime < '{foil_end}'"
        )
        trap_meta = {
            "components": ["default_year", "extra_description"],
            "intended_year": CURRENT_YEAR,
            "assumed_year": MODEL_DEFAULT_YEAR,
            "month": month,
            "date_column": "createdtime",
            "extra_column": "description",
            "foil_sql": foil,
        }
        if noun == "audiences":
            trap_meta["jargon"] = "audiences"
        return question, gold, "medium", "multi", trap_meta

    # -- demonstrations -------------------------------------------------------------

    def _demonstrations(self) -> list[Demonstration]:
        """The in-house demonstration pool the Assistant's RAG retrieves from.

        These demos teach the closed-domain vocabulary (via ``glossary``) and
        the house conventions (name-only projections); they cannot teach
        instance context such as which year "January" means.
        """
        demos = [
            Demonstration(
                question="How many audiences do we have in total?",
                sql="SELECT COUNT(*) FROM hkg_dim_segment",
                db_id=AEP_DB_ID,
                glossary={"audience": "hkg_dim_segment",
                          "audiences": "hkg_dim_segment"},
            ),
            Demonstration(
                question="List the names of all audiences.",
                sql="SELECT segmentname FROM hkg_dim_segment",
                db_id=AEP_DB_ID,
                glossary={"audience": "hkg_dim_segment",
                          "audiences": "hkg_dim_segment"},
            ),
            Demonstration(
                question="How many live destinations are there?",
                sql=(
                    "SELECT COUNT(*) FROM hkg_dim_destination "
                    "WHERE status = 'active'"
                ),
                db_id=AEP_DB_ID,
                glossary={"live": "status=active"},
            ),
            Demonstration(
                question="List the names of the live journeys.",
                sql=(
                    "SELECT journeyname FROM hkg_dim_journey "
                    "WHERE status = 'active'"
                ),
                db_id=AEP_DB_ID,
                glossary={"live": "status=active"},
            ),
            Demonstration(
                question="How many segments were created in June 2023?",
                sql=(
                    "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime "
                    ">= '2023-06-01' AND createdtime < '2023-07-01'"
                ),
                db_id=AEP_DB_ID,
            ),
            Demonstration(
                question="What is the total rows ingested across ingestions?",
                sql="SELECT SUM(rowsingested) FROM hkg_fact_ingestion",
                db_id=AEP_DB_ID,
            ),
        ]
        return demos


def _results_differ(database: Database, gold_sql: str, foil_sql: str) -> bool:
    """True when the foil query's result differs from gold's."""
    from repro.sql.comparison import query_is_ordered, results_match
    from repro.sql.parser import parse_query

    gold_ast = parse_query(gold_sql)
    foil_ast = parse_query(foil_sql)
    gold_result = database.execute_ast(gold_ast)
    foil_result = database.execute_ast(foil_ast)
    ordered = query_is_ordered(gold_ast)
    return not results_match(gold_result, foil_result, ordered=ordered)


def _month_range(year: int, month: int) -> tuple[str, str]:
    start = f"{year:04d}-{month:02d}-01"
    if month == 12:
        end = f"{year + 1:04d}-01-01"
    else:
        end = f"{year:04d}-{month + 1:02d}-01"
    return start, end


def generate_aep_suite(
    seed: int = 7041, n_questions: int = 160
) -> tuple[Benchmark, list[Demonstration]]:
    """Convenience wrapper: build the AEP traffic + demonstration pool."""
    return AepGenerator(seed=seed, n_questions=n_questions).generate()
