"""Experiment harness: shared context construction and caching.

Building the full SPIDER-like suite and running the Assistant over the
1034-question dev split is the expensive part of every experiment, so the
harness builds it once per (scale, seed) and caches it in-process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.core.nl2sql import Nl2SqlModel
from repro.core.retrieval import DemonstrationRetriever
from repro.core.user import AnnotatorConfig, SimulatedAnnotator
from repro.datasets.base import (
    Benchmark,
    Demonstration,
    demonstrations_from_examples,
)
from repro.datasets.aep import generate_aep_suite
from repro.datasets.spider import SpiderSuite, generate_spider_suite
from repro.durability import (
    RunJournal,
    load_suites,
    save_suites,
    suite_path,
)
from repro.eval.metrics import AccuracyReport, PredictionRecord, evaluate_model
from repro.llm.interface import ChatModel
from repro.llm.simulated import SimulatedLLM
from repro.sql import ast
from repro.sql.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.semcache.store import SemanticAnswerCache

#: Scales: full reproduces the paper's sizes; small keeps tests fast.
SCALES = {
    "full": {"n_databases": 200, "n_dev": 1034, "n_train": 600, "aep_questions": 110},
    "medium": {"n_databases": 60, "n_dev": 320, "n_train": 220, "aep_questions": 100},
    "small": {"n_databases": 24, "n_dev": 120, "n_train": 90, "aep_questions": 60},
}

#: Annotator imperfection rates per dataset (see DESIGN.md calibration).
SPIDER_ANNOTATOR = AnnotatorConfig(
    annotate_rate=0.34, vague_rate=0.02, misaligned_rate=0.36
)
AEP_ANNOTATOR = AnnotatorConfig(
    annotate_rate=1.0, vague_rate=0.26, misaligned_rate=0.14
)


@dataclass
class ExperimentContext:
    """Everything the per-table/figure experiments share."""

    scale: str
    seed: int
    spider: SpiderSuite
    aep_benchmark: Benchmark
    aep_demos: list[Demonstration]
    llm: ChatModel = field(default_factory=SimulatedLLM)
    #: Evaluation parallelism: workers for sharded sweeps and the LLM
    #: batch size per shard. Both default to the sequential seed path.
    #: ``worker_mode`` picks threads (GIL-bound, zero setup cost) or
    #: processes (true multi-core; see :mod:`repro.eval.procpool`).
    workers: int = 1
    batch_size: int = 1
    worker_mode: str = "thread"
    #: Where persisted suites live; process-pool workers load from here
    #: (on spawn platforms) instead of regenerating.
    suite_dir: Optional[str] = None
    #: Write-ahead journal for resumable sweeps (None = not journaling).
    journal: Optional[RunJournal] = None
    #: Semantic answer cache wrapped over every model the context builds
    #: (None = off; the default, which keeps artifacts byte-identical).
    semcache: Optional["SemanticAnswerCache"] = None
    _spider_retriever: Optional[DemonstrationRetriever] = None
    _aep_retriever: Optional[DemonstrationRetriever] = None
    _assistant_reports: dict = field(default_factory=dict)

    # -- models -----------------------------------------------------------------

    def _wrap(self, model: Nl2SqlModel):
        """Put the semantic answer cache (when enabled) above the model."""
        if self.semcache is None:
            return model
        from repro.semcache.model import SemanticCachingNl2SqlModel

        return SemanticCachingNl2SqlModel(model, self.semcache, tenant="run")

    def zero_shot_model(self):
        """The Figure 1 setup: schema only, no demonstrations."""
        return self._wrap(Nl2SqlModel(llm=self.llm, retriever=None))

    def spider_assistant_model(self):
        """The Assistant's RAG pipeline over the SPIDER train pool."""
        if self._spider_retriever is None:
            demos = demonstrations_from_examples(self.spider.train_examples)
            self._spider_retriever = DemonstrationRetriever(demos, top_k=4)
        return self._wrap(
            Nl2SqlModel(llm=self.llm, retriever=self._spider_retriever)
        )

    def aep_assistant_model(self):
        """The Assistant's RAG pipeline over the in-house AEP demos."""
        if self._aep_retriever is None:
            self._aep_retriever = DemonstrationRetriever(self.aep_demos, top_k=4)
        return self._wrap(
            Nl2SqlModel(llm=self.llm, retriever=self._aep_retriever)
        )

    # -- journaling -------------------------------------------------------------

    def scope(self, model: str, dataset: str) -> dict:
        """The journal-key namespace for one (model, dataset) evaluation.

        Parallelism knobs (``workers``/``batch_size``) are deliberately
        excluded: they do not change results, so a sweep journaled at one
        parallelism resumes cleanly at another.
        """
        return {
            "scale": self.scale,
            "seed": self.seed,
            "model": model,
            "dataset": dataset,
        }

    # -- parallel execution ------------------------------------------------------

    def _process_mode(self) -> bool:
        return self.worker_mode == "process" and self.workers > 1

    def eval_spec(self, model: str, dataset: str):
        """The picklable worker run-spec, or None outside process mode."""
        if not self._process_mode():
            return None
        from repro.eval.procpool import EvalSpec

        return EvalSpec(
            scale=self.scale,
            seed=self.seed,
            suite_dir=self.suite_dir,
            model=model,
            dataset=dataset,
            batch_size=self.batch_size,
            journal_dir=(
                str(self.journal.directory) if self.journal is not None else None
            ),
            scope_items=tuple(sorted(self.scope(model, dataset).items())),
            instrumented=obs.is_enabled(),
        )

    def correction_spec(
        self,
        dataset: str,
        method: str,
        scope: dict,
        routing: bool = True,
        highlights: bool = False,
        max_rounds: int = 1,
    ):
        """Worker run-spec for a correction sweep (None outside process mode)."""
        if not self._process_mode():
            return None
        from repro.eval.procpool import CorrectionSpec

        return CorrectionSpec(
            scale=self.scale,
            seed=self.seed,
            suite_dir=self.suite_dir,
            dataset=dataset,
            method=method,
            routing=routing,
            highlights=highlights,
            max_rounds=max_rounds,
            journal_dir=(
                str(self.journal.directory) if self.journal is not None else None
            ),
            scope_items=tuple(sorted(scope.items())),
            instrumented=obs.is_enabled(),
        )

    def eval_kwargs(self, model: str, dataset: str) -> dict:
        """The full ``evaluate_model`` parallelism/journal kwargs."""
        return {
            "workers": self.workers,
            "batch_size": self.batch_size,
            "journal": self.journal,
            "scope": self.scope(model, dataset),
            "worker_mode": self.worker_mode,
            "process_spec": self.eval_spec(model, dataset),
        }

    # -- assistant error sets -------------------------------------------------------

    def assistant_report(self, dataset: str) -> AccuracyReport:
        """Assistant predictions over a dataset's dev questions (cached)."""
        if dataset not in self._assistant_reports:
            if dataset == "spider":
                report = evaluate_model(
                    self.spider_assistant_model(),
                    self.spider.benchmark,
                    **self.eval_kwargs("assistant", "spider"),
                )
            elif dataset == "aep":
                report = evaluate_model(
                    self.aep_assistant_model(),
                    self.aep_benchmark,
                    **self.eval_kwargs("assistant", "aep"),
                )
            else:
                raise ValueError(f"unknown dataset {dataset!r}")
            self._assistant_reports[dataset] = report
        return self._assistant_reports[dataset]

    def benchmark(self, dataset: str) -> Benchmark:
        if dataset == "spider":
            return self.spider.benchmark
        if dataset == "aep":
            return self.aep_benchmark
        raise ValueError(f"unknown dataset {dataset!r}")

    def annotator_for(self, dataset: str) -> SimulatedAnnotator:
        """A dataset-appropriate simulated annotator (shared across methods)."""
        benchmark = self.benchmark(dataset)
        # All databases in a benchmark share naming conventions; the
        # annotator needs a schema for NL column names, chosen per example.
        config = SPIDER_ANNOTATOR if dataset == "spider" else AEP_ANNOTATOR
        return _MultiDbAnnotator(benchmark, config)

    def error_set(self, dataset: str) -> list[PredictionRecord]:
        """The *annotated* error set used by the correction experiments.

        Mirrors the paper's protocol: take the Assistant's errors, keep the
        ones the annotator can write feedback for (101 of 243 on SPIDER).
        """
        report = self.assistant_report(dataset)
        annotator = self.annotator_for(dataset)
        annotated = []
        for record in report.errors():
            gold = _as_select(record.example.gold_sql)
            predicted = _try_select(record.predicted_sql)
            if gold is None or predicted is None:
                continue
            if annotator.can_annotate(record.example.example_id, gold, predicted):
                annotated.append(record)
        return annotated


class _MultiDbAnnotator:
    """Annotator facade that picks the right schema per example."""

    def __init__(self, benchmark: Benchmark, config: AnnotatorConfig) -> None:
        self._benchmark = benchmark
        self._config = config
        self._lock = threading.Lock()
        self._per_db: dict[str, SimulatedAnnotator] = {}
        self._example_db: dict[str, str] = {
            example.example_id: example.db_id
            for example in benchmark.examples
        }

    def _annotator(self, example_id: str) -> SimulatedAnnotator:
        try:
            db_id = self._example_db[example_id]
        except KeyError:
            raise ValueError(
                f"unknown example_id {example_id!r}: not part of benchmark "
                f"{self._benchmark.name!r}"
            ) from None
        # Worker threads share one facade; the per-db annotators themselves
        # are stateless per call.
        with self._lock:
            if db_id not in self._per_db:
                schema = self._benchmark.database(db_id).schema
                self._per_db[db_id] = SimulatedAnnotator(schema, self._config)
            return self._per_db[db_id]

    def can_annotate(self, example_id, gold, predicted):
        return self._annotator(example_id).can_annotate(
            example_id, gold, predicted
        )

    def give_feedback(self, example_id, **kwargs):
        return self._annotator(example_id).give_feedback(
            example_id=example_id, **kwargs
        )


def _as_select(sql: str) -> Optional[ast.Select]:
    parsed = parse_query(sql)
    return parsed if isinstance(parsed, ast.Select) else None


def _try_select(sql: str) -> Optional[ast.Select]:
    from repro.errors import SqlError

    try:
        return _as_select(sql)
    except SqlError:
        return None


_CONTEXT_CACHE: dict[tuple[str, int], ExperimentContext] = {}


def build_context(
    scale: str = "full",
    seed: int = 20250325,
    llm: Optional[ChatModel] = None,
    workers: int = 1,
    batch_size: int = 1,
    journal: Optional[RunJournal] = None,
    suite_dir: Optional[str] = None,
    semcache: "Optional[SemanticAnswerCache]" = None,
    worker_mode: str = "thread",
) -> ExperimentContext:
    """Build (or fetch the cached) experiment context.

    ``llm`` swaps the context's chat model — the chaos CLI passes a
    fault-injecting/resilient wrapper stack here. Contexts with a custom
    model are never cached: wrapper state (fault plans, breaker state)
    must not leak into later fault-free runs. ``workers``/``batch_size``
    configure evaluation parallelism; non-default values likewise get a
    fresh (uncached) context so the pristine sequential one stays pristine,
    and so do a ``journal`` (per-run resume state) and a ``semcache``
    (cross-request answer store wrapped over every model the context
    builds).

    ``suite_dir`` enables suite persistence: a previously saved
    ``(scale, seed)`` suite loads instead of regenerating (suites are pure
    functions of scale+seed, so the loaded environment is identical), and
    a cache miss generates then saves for the next start.

    Raises:
        ValueError: when ``scale`` is not one of :data:`SCALES`.
    """
    if scale not in SCALES:
        valid = ", ".join(sorted(SCALES))
        raise ValueError(f"unknown scale {scale!r}; valid scales: {valid}")
    if worker_mode not in ("thread", "process"):
        raise ValueError(f"unknown worker_mode {worker_mode!r}")
    pristine = (
        llm is None
        and workers == 1
        and batch_size == 1
        and journal is None
        and semcache is None
    )
    key = (scale, seed)
    if key in _CONTEXT_CACHE:
        cached = _CONTEXT_CACHE[key]
        # A suite_dir promises the file exists after the run even when the
        # suites came from this process's memory cache — the point is the
        # *next* process's warm start.
        if suite_dir is not None and not suite_path(
            suite_dir, scale, seed
        ).exists():
            save_suites(
                suite_dir,
                scale,
                seed,
                cached.spider,
                cached.aep_benchmark,
                cached.aep_demos,
            )
        if pristine:
            return cached
        # Suites are llm-independent and read-only: share them, but give
        # the custom model a fresh context (fresh retrievers/report cache).
        return ExperimentContext(
            scale=scale,
            seed=seed,
            spider=cached.spider,
            aep_benchmark=cached.aep_benchmark,
            aep_demos=cached.aep_demos,
            llm=llm if llm is not None else cached.llm,
            workers=workers,
            batch_size=batch_size,
            worker_mode=worker_mode,
            suite_dir=suite_dir,
            journal=journal,
            semcache=semcache,
        )
    params = SCALES[scale]
    with obs.span("harness.build_context", scale=scale, seed=seed):
        loaded = None
        if suite_dir is not None:
            with obs.timer("harness.suite_load_ms", scale=scale):
                loaded = load_suites(suite_dir, scale, seed)
        if loaded is not None:
            spider, aep_benchmark, aep_demos = loaded
        else:
            with obs.timer("harness.suite_build_ms", suite="spider"), obs.span(
                "harness.spider_suite", n_databases=params["n_databases"]
            ):
                spider = generate_spider_suite(
                    seed=seed,
                    n_databases=params["n_databases"],
                    n_dev=params["n_dev"],
                    n_train=params["n_train"],
                )
            with obs.timer("harness.suite_build_ms", suite="aep"), obs.span(
                "harness.aep_suite", n_questions=params["aep_questions"]
            ):
                aep_benchmark, aep_demos = generate_aep_suite(
                    n_questions=params["aep_questions"]
                )
            if suite_dir is not None:
                save_suites(
                    suite_dir, scale, seed, spider, aep_benchmark, aep_demos
                )
        obs.count("harness.contexts_built", scale=scale)
        context = ExperimentContext(
            scale=scale,
            seed=seed,
            spider=spider,
            aep_benchmark=aep_benchmark,
            aep_demos=aep_demos,
        )
        if llm is not None:
            context.llm = llm
        context.workers = workers
        context.batch_size = batch_size
        context.worker_mode = worker_mode
        context.suite_dir = suite_dir
        context.journal = journal
        context.semcache = semcache
    if pristine:
        _CONTEXT_CACHE[key] = context
    return context
