"""Journal serialization for evaluation work items.

The run journal (:class:`repro.durability.RunJournal`) stores opaque JSON
values; this module defines what evaluation actually journals and how it
is keyed:

* a **prediction** — one example scored by :func:`evaluate_model`; keyed
  by the evaluation scope (scale/seed/model/dataset) plus the example's
  identity *and* its question/gold SQL, so a regenerated suite that
  changed an example can never replay a stale verdict onto it;
* a **correction** — one multi-round feedback session; keyed additionally
  by the initial predicted SQL, because the same example enters different
  correction experiments (routing on/off, highlights, round budgets)
  through its scope.

Values hold only JSON primitives. A replayed ``PredictionRecord`` is
rebuilt around the *live* :class:`~repro.datasets.base.Example` from the
current benchmark, so downstream grouping (hardness, trap kinds) works on
the same objects whether the record was computed or replayed.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.session import CorrectionOutcome, RoundRecord
from repro.datasets.base import Example
from repro.durability import canonical_key
from repro.eval.metrics import PredictionRecord

# -- predictions ------------------------------------------------------------


def prediction_key(scope: dict, example: Example) -> str:
    """The journal key for one example's prediction under a scope."""
    return canonical_key(
        {
            "kind": "prediction",
            "scope": scope,
            "example_id": example.example_id,
            "db_id": example.db_id,
            "question": example.question,
            "gold_sql": example.gold_sql,
        }
    )


def prediction_to_dict(record: PredictionRecord) -> dict:
    """The journaled value for a prediction (example identity lives in the key)."""
    return {
        "predicted_sql": record.predicted_sql,
        "correct": record.correct,
        "failed": record.failed,
        "notes": list(record.notes),
    }


def prediction_from_dict(example: Example, value: dict) -> PredictionRecord:
    """Rebuild a record around the live example from the current benchmark."""
    return PredictionRecord(
        example=example,
        predicted_sql=value["predicted_sql"],
        correct=bool(value["correct"]),
        failed=bool(value.get("failed", False)),
        notes=list(value.get("notes", ())),
    )


# -- corrections ------------------------------------------------------------


def correction_key(scope: dict, record: PredictionRecord) -> str:
    """The journal key for one correction session under a scope."""
    return canonical_key(
        {
            "kind": "correction",
            "scope": scope,
            "example_id": record.example.example_id,
            "db_id": record.example.db_id,
            "question": record.example.question,
            "gold_sql": record.example.gold_sql,
            "initial_sql": record.predicted_sql,
        }
    )


def outcome_to_dict(outcome: CorrectionOutcome) -> dict:
    """Serialize a full session — every round record — as JSON primitives."""
    return asdict(outcome)


def outcome_from_dict(value: dict) -> CorrectionOutcome:
    return CorrectionOutcome(
        example_id=value["example_id"],
        corrected_round=value["corrected_round"],
        rounds=[RoundRecord(**data) for data in value.get("rounds", ())],
        failure=value.get("failure"),
    )
