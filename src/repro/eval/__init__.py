"""Evaluation harness: metrics, experiment contexts, per-figure runners."""

from repro.eval.analysis import ErrorAnalysis, analyze_corrections
from repro.eval.experiments import (
    Figure2Result,
    Figure8Result,
    Table2Result,
    Table3Result,
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.eval.harness import ExperimentContext, build_context
from repro.eval.metrics import (
    AccuracyReport,
    correction_rate,
    evaluate_model,
    execution_correct,
)
from repro.eval.reporting import (
    render_figure2,
    render_figure8,
    render_table2,
    render_table3,
)

__all__ = [
    "AccuracyReport",
    "ErrorAnalysis",
    "analyze_corrections",
    "ExperimentContext",
    "Figure2Result",
    "Figure8Result",
    "Table2Result",
    "Table3Result",
    "build_context",
    "correction_rate",
    "evaluate_model",
    "execution_correct",
    "render_figure2",
    "render_figure8",
    "render_table2",
    "render_table3",
    "run_figure2",
    "run_figure8",
    "run_table2",
    "run_table3",
]
