"""Process-pool shard execution: true multi-core evaluation sweeps.

``--workers N`` historically sharded sweeps over a thread pool — correct,
but GIL-bound: a *cold* sweep (no completion cache) is pure Python compute
and threads barely beat sequential. This module runs the same contiguous
shards in **worker processes** instead (``--worker-mode process``), where
each core really does run its shard.

The design constraint is byte-identical artifacts with the sequential and
threaded paths, which forces a specific shape:

* The parent never pickles live models, databases, or journals. It ships a
  small frozen **run-spec** (:class:`EvalSpec` / :class:`CorrectionSpec`)
  of JSON primitives plus each shard's example ids.
* Each worker process rebuilds its own stack deterministically:
  ``build_context(scale, seed, suite_dir=...)`` loads the persisted suite
  (or, under the default Linux ``fork`` start method, inherits the
  parent's in-process suite cache for free) and resolves the model by
  name. Suites are pure functions of (scale, seed), so every worker sees
  the same benchmark the parent does.
* Workers return plain dicts (the same serializers the journal uses);
  the parent rebuilds records around its *live* examples in shard order —
  the exact order-preserving merge the thread path uses.
* Each worker journals to its **own** segment (``RunJournal(worker=pid)``)
  in the shared journal directory, so kill -9 durability and ``--resume``
  parity hold across modes; per-worker metrics come back as
  :meth:`MetricsRegistry.to_raw` dumps and fold into the parent registry
  via :meth:`MetricsRegistry.merge`.

Scopes deliberately exclude the worker mode (like ``workers`` and
``batch_size``): a sweep journaled sequentially resumes under
``--worker-mode process`` and vice versa.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import obs
from repro.obs.metrics import MetricsRegistry

# -- run specs --------------------------------------------------------------


@dataclass(frozen=True)
class EvalSpec:
    """Picklable recipe for one evaluation sweep's worker processes."""

    scale: str
    seed: int
    suite_dir: Optional[str]
    model: str  #: "zero_shot" or "assistant"
    dataset: str  #: "spider" or "aep"
    batch_size: int
    journal_dir: Optional[str]
    scope_items: tuple  #: sorted (key, value) pairs of the journal scope
    instrumented: bool  #: whether workers should meter and ship metrics


@dataclass(frozen=True)
class CorrectionSpec:
    """Picklable recipe for one correction sweep's worker processes."""

    scale: str
    seed: int
    suite_dir: Optional[str]
    dataset: str
    method: str  #: "fisql" or "query_rewrite"
    routing: bool
    highlights: bool
    max_rounds: int
    journal_dir: Optional[str]
    scope_items: tuple
    instrumented: bool


# -- worker-process plumbing ------------------------------------------------

#: One journal per directory per worker process. Sealing happens at end of
#: task, not at exit: multiprocessing children skip atexit handlers.
_WORKER_JOURNALS: dict = {}


def _worker_journal(journal_dir: Optional[str]):
    if journal_dir is None:
        return None
    journal = _WORKER_JOURNALS.get(journal_dir)
    if journal is None:
        from repro.durability import RunJournal

        journal = RunJournal(journal_dir, worker=os.getpid())
        _WORKER_JOURNALS[journal_dir] = journal
    return journal


def _worker_obs(instrumented: bool) -> None:
    """Give the worker a fresh, task-local metrics registry.

    A forked worker inherits the parent's *enabled* registry complete with
    its pre-fork counts; metering into that and shipping it back would
    double-count everything on merge. Re-enabling installs fresh state, so
    what the worker returns is exactly this task's delta.
    """
    if instrumented:
        obs.enable()
    elif obs.is_enabled():
        obs.disable()


def _worker_metrics(instrumented: bool) -> Optional[dict]:
    if not instrumented:
        return None
    registry = obs.get_metrics()
    return registry.to_raw() if registry is not None else None


def _worker_context(spec):
    from repro.eval.harness import build_context

    return build_context(
        scale=spec.scale, seed=spec.seed, suite_dir=spec.suite_dir
    )


def _examples_by_id(benchmark) -> dict:
    return {example.example_id: example for example in benchmark.examples}


def _journal_delta(journal, before: tuple) -> dict:
    if journal is None:
        return {"appended": 0, "replayed": 0}
    return {
        "appended": journal.appended - before[0],
        "replayed": journal.replayed - before[1],
    }


def _journal_before(journal) -> tuple:
    if journal is None:
        return (0, 0)
    return (journal.appended, journal.replayed)


def _eval_worker(spec: EvalSpec, example_ids: tuple) -> dict:
    """Score one shard inside a worker process; returns plain dicts."""
    _worker_obs(spec.instrumented)
    from repro.eval.journaling import prediction_to_dict
    from repro.eval.metrics import _evaluate_examples

    context = _worker_context(spec)
    benchmark = context.benchmark(spec.dataset)
    index = _examples_by_id(benchmark)
    examples = [index[example_id] for example_id in example_ids]
    if spec.model == "zero_shot":
        model = context.zero_shot_model()
    elif spec.dataset == "spider":
        model = context.spider_assistant_model()
    else:
        model = context.aep_assistant_model()
    journal = _worker_journal(spec.journal_dir)
    before = _journal_before(journal)
    records = _evaluate_examples(
        model,
        benchmark,
        examples,
        spec.batch_size,
        journal,
        dict(spec.scope_items),
    )
    if journal is not None:
        # Seal now: worker processes exit via os._exit (no atexit), and a
        # sealed segment is what `journal compact` can later fold away.
        journal.seal()
    return {
        "records": [prediction_to_dict(record) for record in records],
        "metrics": _worker_metrics(spec.instrumented),
        "journal": _journal_delta(journal, before),
    }


def _correction_worker(spec: CorrectionSpec, items: tuple) -> dict:
    """Run one shard of correction sessions inside a worker process.

    ``items`` is a tuple of ``(example_id, initial_sql)`` pairs — enough to
    rebuild each :class:`PredictionRecord` around the worker's own live
    example, which reproduces the exact journal key the parent would use.
    """
    _worker_obs(spec.instrumented)
    from repro.eval.experiments import (
        journaled_corrector,
        make_fisql_corrector,
        make_query_rewrite_corrector,
    )
    from repro.eval.journaling import outcome_to_dict
    from repro.eval.metrics import PredictionRecord

    context = _worker_context(spec)
    index = _examples_by_id(context.benchmark(spec.dataset))
    records = [
        PredictionRecord(
            example=index[example_id], predicted_sql=initial_sql, correct=False
        )
        for example_id, initial_sql in items
    ]
    if spec.method == "fisql":
        correct_one = make_fisql_corrector(
            context,
            spec.dataset,
            routing=spec.routing,
            highlights=spec.highlights,
            max_rounds=spec.max_rounds,
        )
    elif spec.method == "query_rewrite":
        correct_one = make_query_rewrite_corrector(context, spec.dataset)
    else:
        raise ValueError(f"unknown correction method {spec.method!r}")
    journal = _worker_journal(spec.journal_dir)
    before = _journal_before(journal)
    if journal is not None:
        correct_one = journaled_corrector(
            journal, dict(spec.scope_items), correct_one
        )
    outcomes = [correct_one(record) for record in records]
    if journal is not None:
        journal.seal()
    return {
        "outcomes": [outcome_to_dict(outcome) for outcome in outcomes],
        "metrics": _worker_metrics(spec.instrumented),
        "journal": _journal_delta(journal, before),
    }


# -- parent-side drivers ----------------------------------------------------


def _pool(max_workers: int) -> ProcessPoolExecutor:
    # Pin the fork start method where it exists: workers then inherit the
    # parent's in-process suite cache (spawn platforms fall back to the
    # default method and rebuild deterministically from the spec).
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        mp_context = None
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=mp_context)


def _fold_result(result: dict, journal) -> None:
    """Merge one worker's metrics and journal counters into this process."""
    raw = result.get("metrics")
    if raw is not None:
        registry = obs.get_metrics()
        if registry is not None:
            registry.merge(MetricsRegistry.from_raw(raw))
    if journal is not None:
        journal.absorb_worker_counts(**result["journal"])


def run_eval_shards(
    spec: EvalSpec, pool: Sequence, workers: int, journal=None
) -> list:
    """Evaluate ``pool`` across worker processes; records in pool order."""
    from repro.eval.journaling import prediction_from_dict
    from repro.eval.metrics import shard_examples

    shards = shard_examples(pool, workers)
    records = []
    with _pool(len(shards)) as executor:
        futures = [
            executor.submit(
                _eval_worker,
                spec,
                tuple(example.example_id for example in shard),
            )
            for shard in shards
        ]
        results = [future.result() for future in futures]
    for shard, result in zip(shards, results):
        values = result["records"]
        if len(values) != len(shard):
            raise RuntimeError(
                f"worker returned {len(values)} records for a shard of "
                f"{len(shard)}"
            )
        records.extend(
            prediction_from_dict(example, value)
            for example, value in zip(shard, values)
        )
        _fold_result(result, journal)
    return records


def run_correction_shards(
    spec: CorrectionSpec, errors: Sequence, workers: int, journal=None
) -> list:
    """Run correction sessions across worker processes, in record order."""
    from repro.eval.journaling import outcome_from_dict
    from repro.eval.metrics import shard_examples

    shards = shard_examples(errors, workers)
    outcomes = []
    with _pool(len(shards)) as executor:
        futures = [
            executor.submit(
                _correction_worker,
                spec,
                tuple(
                    (record.example.example_id, record.predicted_sql)
                    for record in shard
                ),
            )
            for shard in shards
        ]
        results = [future.result() for future in futures]
    for shard, result in zip(shards, results):
        values = result["outcomes"]
        if len(values) != len(shard):
            raise RuntimeError(
                f"worker returned {len(values)} outcomes for a shard of "
                f"{len(shard)}"
            )
        outcomes.extend(outcome_from_dict(value) for value in values)
        _fold_result(result, journal)
    return outcomes
