"""One experiment function per table/figure in the paper's evaluation.

* :func:`run_figure2`  — zero-shot accuracy, SPIDER vs Experience Platform.
* :func:`run_table2`   — % instances corrected: QueryRewrite vs
  FISQL(-Routing) vs FISQL.
* :func:`run_figure8`  — correction % over two feedback rounds.
* :func:`run_table3`   — FISQL with and without highlighting.

Each returns a small result dataclass; :mod:`repro.eval.reporting` renders
them in the paper's row/series format.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.core.feedback import Feedback
from repro.errors import LLMError
from repro.core.rewrite import QueryRewriteBaseline
from repro.core.session import CorrectionOutcome, FisqlPipeline
from repro.datasets.base import Example
from repro.eval.harness import ExperimentContext
from repro.eval.metrics import (
    PredictionRecord,
    correction_rate,
    evaluate_model,
    execution_correct,
)
from repro.sql.parser import parse_query


@dataclass
class Figure2Result:
    """Zero-shot execution accuracy on both datasets (percent)."""

    spider_accuracy: float
    aep_accuracy: float
    spider_total: int
    aep_total: int

    paper_spider: float = 68.6
    paper_aep: float = 24.0


def run_figure2(context: ExperimentContext) -> Figure2Result:
    """Reproduce Figure 2 (zero-shot prompt of Figure 1 on both datasets)."""
    model = context.zero_shot_model()
    spider_report = evaluate_model(
        model,
        context.spider.benchmark,
        **context.eval_kwargs("zero_shot", "spider"),
    )
    aep_report = evaluate_model(
        model,
        context.aep_benchmark,
        **context.eval_kwargs("zero_shot", "aep"),
    )
    return Figure2Result(
        spider_accuracy=100.0 * spider_report.accuracy,
        aep_accuracy=100.0 * aep_report.accuracy,
        spider_total=spider_report.total,
        aep_total=aep_report.total,
    )


@dataclass
class CorrectionCell:
    """One (method, dataset) correction measurement."""

    method: str
    dataset: str
    corrected_percent: float
    n_errors: int
    outcomes: list[CorrectionOutcome] = field(default_factory=list)


@dataclass
class Table2Result:
    """Table 2: % instances corrected after one feedback round."""

    cells: list[CorrectionCell] = field(default_factory=list)

    paper = {
        ("Query Rewrite", "aep"): 35.85,
        ("Query Rewrite", "spider"): 16.83,
        ("FISQL (- Routing)", "spider"): 43.56,
        ("FISQL", "aep"): 67.92,
        ("FISQL", "spider"): 44.55,
    }

    def cell(self, method: str, dataset: str) -> Optional[CorrectionCell]:
        for cell in self.cells:
            if cell.method == method and cell.dataset == dataset:
                return cell
        return None

    def percent(self, method: str, dataset: str) -> float:
        cell = self.cell(method, dataset)
        return cell.corrected_percent if cell is not None else float("nan")


def _assistant_model(context: ExperimentContext, dataset: str):
    if dataset == "spider":
        return context.spider_assistant_model()
    return context.aep_assistant_model()


def journaled_corrector(
    journal,
    scope: dict,
    compute_one: Callable[[PredictionRecord], CorrectionOutcome],
) -> Callable[[PredictionRecord], CorrectionOutcome]:
    """Wrap a corrector with journal replay/append under a scope.

    Shared by the thread path below and process-pool workers
    (:mod:`repro.eval.procpool`), so both modes journal and replay
    identically.
    """
    from repro.eval.journaling import (
        correction_key,
        outcome_from_dict,
        outcome_to_dict,
    )

    def correct_one(record: PredictionRecord) -> CorrectionOutcome:
        key = correction_key(scope, record)
        hit = journal.replay(key)
        if hit is not None:
            return outcome_from_dict(hit["value"])
        outcome = compute_one(record)
        journal.append(key, "correction", outcome_to_dict(outcome))
        return outcome

    return correct_one


def _map_corrections(
    context: ExperimentContext,
    errors: list[PredictionRecord],
    correct_one: Callable[[PredictionRecord], CorrectionOutcome],
    scope: Optional[dict] = None,
    spec=None,
) -> list[CorrectionOutcome]:
    """Run one correction per error record, in record order.

    With ``context.workers > 1`` the per-record corrections fan out over a
    thread pool — or, given a process ``spec``, over worker processes (see
    :mod:`repro.eval.procpool`); every correction is a deterministic
    function of its record (annotator draws are keyed by example id), so
    the ordered result list is identical to the sequential one.

    When the context carries a journal, sessions already journaled under
    ``scope`` replay instead of re-running, and each fresh session is
    journaled on completion — per-record determinism is what makes the
    replayed/computed mix indistinguishable from an uninterrupted run.
    """
    if spec is not None and context.workers > 1 and len(errors) > 1:
        # Workers journal through their own segments; the parent only
        # folds their counters (see run_correction_shards).
        from repro.eval.procpool import run_correction_shards

        return run_correction_shards(
            spec, errors, context.workers, journal=context.journal
        )

    if context.journal is not None and scope is not None:
        correct_one = journaled_corrector(context.journal, scope, correct_one)

    if context.workers <= 1 or len(errors) <= 1:
        return [correct_one(record) for record in errors]
    with ThreadPoolExecutor(
        max_workers=min(context.workers, len(errors)),
        thread_name_prefix="correct",
    ) as executor:
        return list(executor.map(correct_one, errors))


def make_fisql_corrector(
    context: ExperimentContext,
    dataset: str,
    routing: bool,
    highlights: bool,
    max_rounds: int,
) -> Callable[[PredictionRecord], CorrectionOutcome]:
    """Build the per-record FISQL correction closure.

    A factory (rather than inline in :func:`_run_fisql`) so process-pool
    workers can rebuild the identical corrector from a run-spec.
    """
    model = _assistant_model(context, dataset)
    pipeline = FisqlPipeline(
        model=model, llm=context.llm, routing=routing, highlights=highlights
    )
    annotator = context.annotator_for(dataset)
    benchmark = context.benchmark(dataset)

    def correct_one(record: PredictionRecord) -> CorrectionOutcome:
        database = benchmark.database(record.example.db_id)
        try:
            return pipeline.correct(
                example=record.example,
                database=database,
                initial_sql=record.predicted_sql,
                annotator=annotator,
                max_rounds=max_rounds,
            )
        except LLMError as error:
            return _failed_outcome(record.example.example_id, error)

    return correct_one


def _run_fisql(
    context: ExperimentContext,
    dataset: str,
    errors: list[PredictionRecord],
    routing: bool,
    highlights: bool,
    max_rounds: int,
) -> list[CorrectionOutcome]:
    correct_one = make_fisql_corrector(
        context, dataset, routing=routing, highlights=highlights,
        max_rounds=max_rounds,
    )
    scope = dict(
        context.scope("fisql", dataset),
        routing=routing,
        highlights=highlights,
        max_rounds=max_rounds,
    )
    spec = context.correction_spec(
        dataset,
        "fisql",
        scope,
        routing=routing,
        highlights=highlights,
        max_rounds=max_rounds,
    )
    return _map_corrections(context, errors, correct_one, scope, spec=spec)


def _failed_outcome(example_id: str, error: Exception) -> CorrectionOutcome:
    """Skip-and-record: an aborted session counts as uncorrected."""
    obs.count("eval.correction_failures")
    return CorrectionOutcome(
        example_id=example_id,
        corrected_round=None,
        failure=f"{type(error).__name__}: {error}",
    )


def make_query_rewrite_corrector(
    context: ExperimentContext, dataset: str
) -> Callable[[PredictionRecord], CorrectionOutcome]:
    """Build the per-record Query Rewrite baseline closure (see above)."""
    model = _assistant_model(context, dataset)
    baseline = QueryRewriteBaseline(llm=context.llm, model=model)
    annotator = context.annotator_for(dataset)
    benchmark = context.benchmark(dataset)

    def correct_one(record: PredictionRecord) -> CorrectionOutcome:
        example = record.example
        database = benchmark.database(example.db_id)
        outcome = CorrectionOutcome(
            example_id=example.example_id, corrected_round=None
        )
        feedback = _first_feedback(annotator, example, record.predicted_sql)
        if feedback is not None:
            try:
                step = baseline.incorporate(example.question, feedback, database)
            except LLMError as error:
                outcome = _failed_outcome(example.example_id, error)
            else:
                if execution_correct(
                    database, example.gold_sql, step.prediction.sql
                ):
                    outcome.corrected_round = 1
        return outcome

    return correct_one


def _run_query_rewrite(
    context: ExperimentContext,
    dataset: str,
    errors: list[PredictionRecord],
) -> list[CorrectionOutcome]:
    scope = context.scope("query_rewrite", dataset)
    spec = context.correction_spec(dataset, "query_rewrite", scope)
    return _map_corrections(
        context,
        errors,
        make_query_rewrite_corrector(context, dataset),
        scope,
        spec=spec,
    )


def _first_feedback(
    annotator, example: Example, predicted_sql: str
) -> Optional[Feedback]:
    from repro.errors import SqlError
    from repro.sql import ast

    gold = parse_query(example.gold_sql)
    try:
        predicted = parse_query(predicted_sql)
    except SqlError:
        return None
    if not isinstance(gold, ast.Select) or not isinstance(predicted, ast.Select):
        return None
    return annotator.give_feedback(
        example_id=example.example_id,
        question=example.question,
        gold=gold,
        predicted=predicted,
        round_index=1,
        use_highlights=False,
    )


def run_table2(context: ExperimentContext) -> Table2Result:
    """Reproduce Table 2 (one feedback round, three methods)."""
    result = Table2Result()
    for dataset in ("aep", "spider"):
        errors = context.error_set(dataset)
        qr = _run_query_rewrite(context, dataset, errors)
        result.cells.append(
            CorrectionCell(
                method="Query Rewrite",
                dataset=dataset,
                corrected_percent=correction_rate(qr, within_rounds=1),
                n_errors=len(errors),
                outcomes=qr,
            )
        )
        if dataset == "spider":
            no_routing = _run_fisql(
                context, dataset, errors, routing=False, highlights=False,
                max_rounds=1,
            )
            result.cells.append(
                CorrectionCell(
                    method="FISQL (- Routing)",
                    dataset=dataset,
                    corrected_percent=correction_rate(no_routing, within_rounds=1),
                    n_errors=len(errors),
                    outcomes=no_routing,
                )
            )
        fisql = _run_fisql(
            context, dataset, errors, routing=True, highlights=False,
            max_rounds=1,
        )
        result.cells.append(
            CorrectionCell(
                method="FISQL",
                dataset=dataset,
                corrected_percent=correction_rate(fisql, within_rounds=1),
                n_errors=len(errors),
                outcomes=fisql,
            )
        )
    return result


@dataclass
class Figure8Result:
    """Figure 8: correction % by feedback round on SPIDER errors."""

    fisql_by_round: list[float] = field(default_factory=list)
    no_routing_by_round: list[float] = field(default_factory=list)
    n_errors: int = 0

    paper_note = (
        "one additional feedback round improves each approach by ~15%; "
        "FISQL (- Routing) matches FISQL after two rounds"
    )


def run_figure8(context: ExperimentContext, rounds: int = 2) -> Figure8Result:
    """Reproduce Figure 8 (multi-round feedback on SPIDER errors)."""
    errors = context.error_set("spider")
    fisql = _run_fisql(
        context, "spider", errors, routing=True, highlights=False,
        max_rounds=rounds,
    )
    no_routing = _run_fisql(
        context, "spider", errors, routing=False, highlights=False,
        max_rounds=rounds,
    )
    result = Figure8Result(n_errors=len(errors))
    for round_index in range(1, rounds + 1):
        result.fisql_by_round.append(
            correction_rate(fisql, within_rounds=round_index)
        )
        result.no_routing_by_round.append(
            correction_rate(no_routing, within_rounds=round_index)
        )
    return result


@dataclass
class Table3Result:
    """Table 3: highlighting ablation."""

    fisql_aep: float = 0.0
    fisql_spider: float = 0.0
    highlighting_aep: float = 0.0
    highlighting_spider: float = 0.0
    n_aep: int = 0
    n_spider: int = 0

    paper = {
        ("FISQL", "aep"): 67.92,
        ("FISQL", "spider"): 44.55,
        ("FISQL (+ Highlighting)", "aep"): 69.81,
        ("FISQL (+ Highlighting)", "spider"): 44.55,
    }


def run_table3(context: ExperimentContext) -> Table3Result:
    """Reproduce Table 3 (highlights as additional grounding)."""
    result = Table3Result()
    for dataset in ("aep", "spider"):
        errors = context.error_set(dataset)
        plain = _run_fisql(
            context, dataset, errors, routing=True, highlights=False,
            max_rounds=1,
        )
        highlighted = _run_fisql(
            context, dataset, errors, routing=True, highlights=True,
            max_rounds=1,
        )
        plain_rate = correction_rate(plain, within_rounds=1)
        highlight_rate = correction_rate(highlighted, within_rounds=1)
        if dataset == "aep":
            result.fisql_aep = plain_rate
            result.highlighting_aep = highlight_rate
            result.n_aep = len(errors)
        else:
            result.fisql_spider = plain_rate
            result.highlighting_spider = highlight_rate
            result.n_spider = len(errors)
    return result
