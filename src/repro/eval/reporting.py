"""Render experiment results in the paper's table/series formats."""

from __future__ import annotations

from repro.eval.experiments import (
    Figure2Result,
    Figure8Result,
    Table2Result,
    Table3Result,
)


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    rule = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def ascii_bar(value: float, scale: float = 100.0, width: int = 40) -> str:
    """A unit-width ASCII bar for terminal 'charts'."""
    filled = int(round(width * max(0.0, min(value, scale)) / scale))
    return "█" * filled + "·" * (width - filled)


def render_figure2_chart(result: Figure2Result) -> str:
    """Figure 2 as an ASCII bar chart (closer to the paper's visual)."""
    rows = [
        ("SPIDER", result.spider_accuracy),
        ("Experience Platform", result.aep_accuracy),
    ]
    width = max(len(label) for label, _v in rows)
    lines = ["Figure 2 — zero-shot NL2SQL execution accuracy (%)"]
    for label, value in rows:
        lines.append(f"{label.ljust(width)} |{ascii_bar(value)}| {value:.1f}")
    return "\n".join(lines)


def render_figure8_chart(result: Figure8Result) -> str:
    """Figure 8 as ASCII bars per round and method."""
    lines = ["Figure 8 — correction % by feedback round (SPIDER errors)"]
    for round_index in range(len(result.fisql_by_round)):
        fisql = result.fisql_by_round[round_index]
        ablated = result.no_routing_by_round[round_index]
        lines.append(
            f"round {round_index + 1}  FISQL       "
            f"|{ascii_bar(fisql)}| {fisql:.1f}"
        )
        lines.append(
            f"round {round_index + 1}  (-Routing)  "
            f"|{ascii_bar(ablated)}| {ablated:.1f}"
        )
    return "\n".join(lines)


def render_figure2(result: Figure2Result) -> str:
    """Figure 2 as a two-row comparison (paper vs measured)."""
    rows = [
        [
            "SPIDER",
            f"{result.spider_accuracy:.1f}",
            f"{result.paper_spider:.1f}",
            str(result.spider_total),
        ],
        [
            "Experience Platform",
            f"{result.aep_accuracy:.1f}",
            f"{result.paper_aep:.1f}",
            str(result.aep_total),
        ],
    ]
    return "Figure 2 — zero-shot NL2SQL execution accuracy (%)\n" + _table(
        ["Dataset", "Measured", "Paper", "N"], rows
    )


def render_table2(result: Table2Result) -> str:
    """Table 2 in the paper's layout."""
    rows = []
    for method in ("Query Rewrite", "FISQL (- Routing)", "FISQL"):
        aep = result.cell(method, "aep")
        spider = result.cell(method, "spider")
        rows.append(
            [
                method,
                f"{aep.corrected_percent:.2f}" if aep else "-",
                f"{result.paper.get((method, 'aep'), float('nan')):.2f}"
                if (method, "aep") in result.paper
                else "-",
                f"{spider.corrected_percent:.2f}" if spider else "-",
                f"{result.paper.get((method, 'spider'), float('nan')):.2f}"
                if (method, "spider") in result.paper
                else "-",
            ]
        )
    return (
        "Table 2 — % instances corrected with one round of NL feedback\n"
        + _table(
            [
                "Method",
                "EP (measured)",
                "EP (paper)",
                "SPIDER (measured)",
                "SPIDER (paper)",
            ],
            rows,
        )
    )


def render_figure8(result: Figure8Result) -> str:
    """Figure 8 as two series over feedback rounds."""
    rows = []
    for round_index in range(len(result.fisql_by_round)):
        rows.append(
            [
                str(round_index + 1),
                f"{result.fisql_by_round[round_index]:.2f}",
                f"{result.no_routing_by_round[round_index]:.2f}",
            ]
        )
    note = f"(paper: {result.paper_note})"
    return (
        "Figure 8 — correction % by feedback round (SPIDER errors)\n"
        + _table(["Round", "FISQL", "FISQL (- Routing)"], rows)
        + "\n"
        + note
    )


def render_table3(result: Table3Result) -> str:
    """Table 3 in the paper's layout."""
    rows = [
        [
            "FISQL",
            f"{result.fisql_aep:.2f}",
            f"{result.paper[('FISQL', 'aep')]:.2f}",
            f"{result.fisql_spider:.2f}",
            f"{result.paper[('FISQL', 'spider')]:.2f}",
        ],
        [
            "FISQL (+ Highlighting)",
            f"{result.highlighting_aep:.2f}",
            f"{result.paper[('FISQL (+ Highlighting)', 'aep')]:.2f}",
            f"{result.highlighting_spider:.2f}",
            f"{result.paper[('FISQL (+ Highlighting)', 'spider')]:.2f}",
        ],
    ]
    return (
        "Table 3 — % instances corrected with highlights + NL feedback\n"
        + _table(
            [
                "Method",
                "EP (measured)",
                "EP (paper)",
                "SPIDER (measured)",
                "SPIDER (paper)",
            ],
            rows,
        )
    )
