"""Evaluation metrics: execution accuracy and correction rate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro import obs
from repro.core.nl2sql import Nl2SqlModel
from repro.core.session import CorrectionOutcome
from repro.datasets.base import Benchmark, Example
from repro.errors import LLMError, SqlError
from repro.sql.comparison import query_is_ordered, results_match
from repro.sql.engine import Database
from repro.sql.executor import QueryResult
from repro.sql.parser import parse_query


@dataclass
class PredictionRecord:
    """One example's prediction and its execution verdict.

    ``failed`` marks examples whose prediction never materialized (the LLM
    backend failed after retries); they score as incorrect but are kept in
    the report so degradation is visible rather than silently dropped.
    """

    example: Example
    predicted_sql: str
    correct: bool
    failed: bool = False
    notes: list[str] = field(default_factory=list)


@dataclass
class AccuracyReport:
    """Execution accuracy over a benchmark."""

    records: list[PredictionRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def correct(self) -> int:
        return sum(1 for record in self.records if record.correct)

    @property
    def accuracy(self) -> float:
        if not self.records:
            return 0.0
        return self.correct / self.total

    @property
    def failed(self) -> int:
        """Examples whose prediction failed outright (backend giveups)."""
        return sum(1 for record in self.records if record.failed)

    def errors(self) -> list[PredictionRecord]:
        """The mispredicted examples (the raw error set)."""
        return [record for record in self.records if not record.correct]

    def failures(self) -> list[PredictionRecord]:
        """The skip-and-record examples (no prediction produced)."""
        return [record for record in self.records if record.failed]

    def by_hardness(self) -> dict[str, tuple[int, int]]:
        """SPIDER-style breakdown: hardness → (correct, total)."""
        buckets: dict[str, list[int]] = {}
        for record in self.records:
            bucket = buckets.setdefault(record.example.hardness, [0, 0])
            bucket[1] += 1
            if record.correct:
                bucket[0] += 1
        return {
            hardness: (correct, total)
            for hardness, (correct, total) in sorted(buckets.items())
        }

    def by_trap_kind(self) -> dict[str, tuple[int, int]]:
        """Breakdown by planted difficulty: kind → (correct, total)."""
        buckets: dict[str, list[int]] = {}
        for record in self.records:
            kind = record.example.trap_kind or "untrapped"
            bucket = buckets.setdefault(kind, [0, 0])
            bucket[1] += 1
            if record.correct:
                bucket[0] += 1
        return {
            kind: (correct, total)
            for kind, (correct, total) in sorted(buckets.items())
        }


def execution_correct(
    database: Database, gold_sql: str, predicted_sql: str
) -> bool:
    """Single-example execution-accuracy verdict."""
    gold_ast = parse_query(gold_sql)
    gold_result = database.execute_ast(gold_ast)
    if not isinstance(gold_result, QueryResult):
        raise SqlError(
            f"gold query did not produce rows (got {type(gold_result).__name__})"
        )
    try:
        predicted_ast = parse_query(predicted_sql)
        predicted_result = database.execute_ast(predicted_ast)
    except SqlError:
        return False
    if not isinstance(predicted_result, QueryResult):
        return False
    return results_match(
        gold_result, predicted_result, ordered=query_is_ordered(gold_ast)
    )


def evaluate_model(
    model: Nl2SqlModel,
    benchmark: Benchmark,
    examples: Optional[Sequence[Example]] = None,
) -> AccuracyReport:
    """Run a model over a benchmark and score execution accuracy."""
    report = AccuracyReport()
    pool = list(examples if examples is not None else benchmark.examples)
    with obs.span(
        "eval.evaluate_model", benchmark=benchmark.name, n=len(pool)
    ) as sp:
        for example in pool:
            database = benchmark.database(example.db_id)
            try:
                prediction = model.predict(example.question, database)
            except LLMError as error:
                # Skip-and-record: one dead backend call must not abort a
                # benchmark sweep. The example scores as incorrect.
                obs.count("eval.skipped_examples")
                obs.count("eval.examples", correct=False)
                report.records.append(
                    PredictionRecord(
                        example=example,
                        predicted_sql="",
                        correct=False,
                        failed=True,
                        notes=[f"prediction failed ({error})"],
                    )
                )
                continue
            correct = execution_correct(
                database, example.gold_sql, prediction.sql
            )
            obs.count("eval.examples", correct=correct)
            report.records.append(
                PredictionRecord(
                    example=example,
                    predicted_sql=prediction.sql,
                    correct=correct,
                    notes=prediction.notes,
                )
            )
        sp.set("accuracy", report.accuracy)
        sp.set("failed", report.failed)
    return report


def correction_rate(
    outcomes: Iterable[CorrectionOutcome], within_rounds: int = 1
) -> float:
    """Percentage of error instances corrected within N feedback rounds."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    corrected = sum(
        1 for outcome in outcomes if outcome.corrected_by(within_rounds)
    )
    return 100.0 * corrected / len(outcomes)
