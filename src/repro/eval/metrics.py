"""Evaluation metrics: execution accuracy and correction rate."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro import obs
from repro.core.nl2sql import Nl2SqlModel
from repro.core.session import CorrectionOutcome
from repro.datasets.base import Benchmark, Example
from repro.errors import LLMError, SqlError
from repro.sql.comparison import query_is_ordered, results_match
from repro.sql.engine import Database
from repro.sql.executor import QueryResult
from repro.sql.parser import parse_query


@dataclass
class PredictionRecord:
    """One example's prediction and its execution verdict.

    ``failed`` marks examples whose prediction never materialized (the LLM
    backend failed after retries); they score as incorrect but are kept in
    the report so degradation is visible rather than silently dropped.
    """

    example: Example
    predicted_sql: str
    correct: bool
    failed: bool = False
    notes: list[str] = field(default_factory=list)


@dataclass
class AccuracyReport:
    """Execution accuracy over a benchmark."""

    records: list[PredictionRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def correct(self) -> int:
        return sum(1 for record in self.records if record.correct)

    @property
    def accuracy(self) -> float:
        if not self.records:
            return 0.0
        return self.correct / self.total

    @property
    def failed(self) -> int:
        """Examples whose prediction failed outright (backend giveups)."""
        return sum(1 for record in self.records if record.failed)

    def errors(self) -> list[PredictionRecord]:
        """The mispredicted examples (the raw error set)."""
        return [record for record in self.records if not record.correct]

    def failures(self) -> list[PredictionRecord]:
        """The skip-and-record examples (no prediction produced)."""
        return [record for record in self.records if record.failed]

    def by_hardness(self) -> dict[str, tuple[int, int]]:
        """SPIDER-style breakdown: hardness → (correct, total)."""
        buckets: dict[str, list[int]] = {}
        for record in self.records:
            bucket = buckets.setdefault(record.example.hardness, [0, 0])
            bucket[1] += 1
            if record.correct:
                bucket[0] += 1
        return {
            hardness: (correct, total)
            for hardness, (correct, total) in sorted(buckets.items())
        }

    def by_trap_kind(self) -> dict[str, tuple[int, int]]:
        """Breakdown by planted difficulty: kind → (correct, total)."""
        buckets: dict[str, list[int]] = {}
        for record in self.records:
            kind = record.example.trap_kind or "untrapped"
            bucket = buckets.setdefault(kind, [0, 0])
            bucket[1] += 1
            if record.correct:
                bucket[0] += 1
        return {
            kind: (correct, total)
            for kind, (correct, total) in sorted(buckets.items())
        }


def execution_correct(
    database: Database, gold_sql: str, predicted_sql: str
) -> bool:
    """Single-example execution-accuracy verdict."""
    gold_ast = parse_query(gold_sql)
    gold_result = database.execute_ast(gold_ast)
    if not isinstance(gold_result, QueryResult):
        raise SqlError(
            f"gold query did not produce rows (got {type(gold_result).__name__})"
        )
    try:
        predicted_ast = parse_query(predicted_sql)
        predicted_result = database.execute_ast(predicted_ast)
    except SqlError:
        return False
    if not isinstance(predicted_result, QueryResult):
        return False
    return results_match(
        gold_result, predicted_result, ordered=query_is_ordered(gold_ast)
    )


def _failed_record(example: Example, error: LLMError) -> PredictionRecord:
    """Skip-and-record: one dead backend call must not abort a sweep."""
    obs.count("eval.skipped_examples")
    obs.count("eval.examples", correct=False)
    return PredictionRecord(
        example=example,
        predicted_sql="",
        correct=False,
        failed=True,
        notes=[f"prediction failed ({error})"],
    )


def _scored_record(
    benchmark: Benchmark, example: Example, predicted_sql: str, notes: list[str]
) -> PredictionRecord:
    correct = execution_correct(
        benchmark.database(example.db_id), example.gold_sql, predicted_sql
    )
    obs.count("eval.examples", correct=correct)
    return PredictionRecord(
        example=example,
        predicted_sql=predicted_sql,
        correct=correct,
        notes=notes,
    )


def _evaluate_examples(
    model: Nl2SqlModel,
    benchmark: Benchmark,
    pool: Sequence[Example],
    batch_size: int,
    journal=None,
    scope: Optional[dict] = None,
) -> list[PredictionRecord]:
    """Score a contiguous run of examples (one worker's shard).

    ``batch_size > 1`` routes predictions through the model's settled
    batch path; outcomes come back in example order either way, so the
    produced records are identical to the sequential ones.

    With a ``journal``, already-journaled examples replay from it and only
    the rest are predicted; each freshly computed record is journaled the
    moment it is scored. The returned list keeps pool order regardless of
    the replay/compute mix, so a resumed run's records are identical to an
    uninterrupted run's.
    """
    slots: list[Optional[PredictionRecord]] = [None] * len(pool)
    pending: list[tuple[int, Example, Optional[str]]] = []
    if journal is not None:
        from repro.eval.journaling import prediction_from_dict, prediction_key

        for index, example in enumerate(pool):
            key = prediction_key(scope or {}, example)
            hit = journal.replay(key)
            if hit is not None:
                slots[index] = prediction_from_dict(example, hit["value"])
            else:
                pending.append((index, example, key))
    else:
        pending = [(index, example, None) for index, example in enumerate(pool)]

    def settle(index: int, key: Optional[str], record: PredictionRecord) -> None:
        if journal is not None and key is not None:
            from repro.eval.journaling import prediction_to_dict

            journal.append(key, "prediction", prediction_to_dict(record))
        slots[index] = record

    if batch_size <= 1:
        for index, example, key in pending:
            database = benchmark.database(example.db_id)
            try:
                prediction = model.predict(example.question, database)
            except LLMError as error:
                settle(index, key, _failed_record(example, error))
                continue
            settle(
                index,
                key,
                _scored_record(
                    benchmark, example, prediction.sql, prediction.notes
                ),
            )
    else:
        for start in range(0, len(pending), batch_size):
            chunk = pending[start : start + batch_size]
            outcomes = model.predict_batch(
                [
                    (example.question, benchmark.database(example.db_id))
                    for _, example, _ in chunk
                ]
            )
            for (index, example, key), outcome in zip(chunk, outcomes):
                if isinstance(outcome, LLMError):
                    settle(index, key, _failed_record(example, outcome))
                else:
                    settle(
                        index,
                        key,
                        _scored_record(
                            benchmark, example, outcome.sql, outcome.notes
                        ),
                    )
    return [record for record in slots if record is not None]


def shard_examples(
    pool: Sequence[Example], workers: int
) -> list[list[Example]]:
    """Contiguous, near-equal shards (empty shards are dropped).

    Contiguity + concatenation in shard order is what makes the parallel
    merge deterministic: the merged record list equals the sequential one
    regardless of which worker finished first.
    """
    workers = max(1, workers)
    pool = list(pool)
    shards: list[list[Example]] = []
    base, extra = divmod(len(pool), workers)
    cursor = 0
    for worker in range(workers):
        size = base + (1 if worker < extra else 0)
        if size == 0:
            continue
        shards.append(pool[cursor : cursor + size])
        cursor += size
    return shards


def evaluate_model(
    model: Nl2SqlModel,
    benchmark: Benchmark,
    examples: Optional[Sequence[Example]] = None,
    workers: int = 1,
    batch_size: int = 1,
    journal=None,
    scope: Optional[dict] = None,
    worker_mode: str = "thread",
    process_spec=None,
) -> AccuracyReport:
    """Run a model over a benchmark and score execution accuracy.

    ``workers > 1`` shards the pool across workers (contiguous shards,
    merged back in shard order — results are byte-identical to a
    sequential run). ``worker_mode="process"`` with a ``process_spec``
    (see :mod:`repro.eval.procpool` and
    :meth:`ExperimentContext.eval_spec`) runs the shards in worker
    processes instead of threads — same merge, true multi-core.
    ``batch_size > 1`` groups each shard's predictions into settled LLM
    batches. ``journal`` (a :class:`repro.durability.RunJournal`) makes
    the sweep resumable: journaled examples replay, fresh ones are
    computed and journaled; ``scope`` namespaces the journal keys (see
    :mod:`repro.eval.journaling`).
    """
    report = AccuracyReport()
    pool = list(examples if examples is not None else benchmark.examples)
    with obs.span(
        "eval.evaluate_model", benchmark=benchmark.name, n=len(pool)
    ) as sp:
        if workers <= 1:
            report.records.extend(
                _evaluate_examples(
                    model, benchmark, pool, batch_size, journal, scope
                )
            )
        elif worker_mode == "process" and process_spec is not None:
            from repro.eval.procpool import run_eval_shards

            report.records.extend(
                run_eval_shards(process_spec, pool, workers, journal=journal)
            )
        else:
            shards = shard_examples(pool, workers)
            with ThreadPoolExecutor(
                max_workers=len(shards), thread_name_prefix="eval"
            ) as executor:
                futures = [
                    executor.submit(
                        _evaluate_examples,
                        model,
                        benchmark,
                        shard,
                        batch_size,
                        journal,
                        scope,
                    )
                    for shard in shards
                ]
                for future in futures:
                    report.records.extend(future.result())
        sp.set("accuracy", report.accuracy)
        sp.set("failed", report.failed)
    return report


def correction_rate(
    outcomes: Iterable[CorrectionOutcome], within_rounds: int = 1
) -> float:
    """Percentage of error instances corrected within N feedback rounds."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    corrected = sum(
        1 for outcome in outcomes if outcome.corrected_by(within_rounds)
    )
    return 100.0 * corrected / len(outcomes)
