"""Error analysis: the paper's §4.2 residual-failure breakdown, computed.

The paper attributes uncorrected instances to three causes:

(a) queries with multiple errors needing multiple feedback rounds,
(b) inability of the approach to interpret the user feedback, and
(c) user feedback misaligned with the required correction.

Given the correction outcomes and the error records, this module
reconstructs that attribution from observable evidence (round notes,
residual diffs), plus a per-trap-kind correction breakdown.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.session import CorrectionOutcome
from repro.datasets.base import Benchmark
from repro.errors import SqlError
from repro.eval.metrics import PredictionRecord
from repro.sql import ast
from repro.sql.analysis import diff_queries
from repro.sql.parser import parse_query

CAUSE_MULTI_ERROR = "multiple_errors"
CAUSE_UNINTERPRETED = "feedback_not_interpreted"
CAUSE_MISALIGNED = "feedback_misaligned"
CAUSE_WRONG_EDIT = "edit_did_not_fix"
CAUSE_NO_FEEDBACK = "no_feedback_given"


@dataclass
class ErrorAnalysis:
    """Aggregated correction results with residual-cause attribution."""

    total: int = 0
    corrected: int = 0
    by_trap_kind: dict[str, tuple[int, int]] = field(default_factory=dict)
    residual_causes: Counter = field(default_factory=Counter)

    @property
    def corrected_percent(self) -> float:
        if not self.total:
            return 0.0
        return 100.0 * self.corrected / self.total

    def render(self) -> str:
        """Human-readable report in the spirit of the paper's §4.2 prose."""
        lines = [
            f"Corrected {self.corrected}/{self.total} "
            f"({self.corrected_percent:.1f}%)",
            "",
            "Per planted-difficulty kind (corrected/total):",
        ]
        for kind in sorted(self.by_trap_kind):
            fixed, total = self.by_trap_kind[kind]
            lines.append(f"  {kind:<20} {fixed}/{total}")
        lines.append("")
        lines.append("Residual failure causes:")
        for cause, count in self.residual_causes.most_common():
            lines.append(f"  {cause:<26} {count}")
        return "\n".join(lines)


def _residual_cause(
    record: PredictionRecord,
    outcome: CorrectionOutcome,
    benchmark: Benchmark,
) -> str:
    """Attribute one uncorrected instance to a residual cause."""
    if not outcome.rounds:
        return CAUSE_NO_FEEDBACK
    last = outcome.rounds[-1]
    unchanged = last.sql_after == last.sql_before
    if unchanged:
        # The model could not act on the feedback: either the feedback was
        # vacuous (misaligned user) or the phrasing fell outside the
        # demonstration coverage.
        if any("could not interpret" in note for note in last.notes):
            if _looks_misaligned(last.feedback_text):
                return CAUSE_MISALIGNED
            return CAUSE_UNINTERPRETED
        return CAUSE_UNINTERPRETED
    # An edit was applied but the query is still wrong: either there were
    # several errors (some remain) or the edit targeted the wrong thing.
    remaining = _remaining_errors(record, last.sql_after)
    if remaining is not None and remaining >= 2:
        return CAUSE_MULTI_ERROR
    if record.example.trap_kind == "multi":
        return CAUSE_MULTI_ERROR
    return CAUSE_WRONG_EDIT


def _looks_misaligned(feedback_text: str) -> bool:
    lowered = feedback_text.lower()
    return any(
        marker in lowered
        for marker in ("not what i asked", "look right", "seems off")
    )


def _remaining_errors(
    record: PredictionRecord, final_sql: str
) -> Optional[int]:
    try:
        gold = parse_query(record.example.gold_sql)
        pred = parse_query(final_sql)
    except SqlError:
        return None
    if not isinstance(gold, ast.Select) or not isinstance(pred, ast.Select):
        return None
    return len(diff_queries(gold, pred))


def analyze_corrections(
    records: Sequence[PredictionRecord],
    outcomes: Sequence[CorrectionOutcome],
    benchmark: Benchmark,
    within_rounds: int = 1,
) -> ErrorAnalysis:
    """Build the §4.2-style breakdown for one method's outcomes."""
    if len(records) != len(outcomes):
        raise ValueError("records and outcomes must align")
    analysis = ErrorAnalysis(total=len(records))
    per_kind_total: Counter = Counter()
    per_kind_fixed: Counter = Counter()
    for record, outcome in zip(records, outcomes):
        kind = record.example.trap_kind or "untrapped"
        per_kind_total[kind] += 1
        if outcome.corrected_by(within_rounds):
            analysis.corrected += 1
            per_kind_fixed[kind] += 1
        else:
            analysis.residual_causes[
                _residual_cause(record, outcome, benchmark)
            ] += 1
    analysis.by_trap_kind = {
        kind: (per_kind_fixed[kind], per_kind_total[kind])
        for kind in per_kind_total
    }
    return analysis
