"""Deterministic fault injection for any :class:`ChatModel`.

:class:`FaultInjectingChatModel` is the chaos harness: it wraps an inner
model and, per call, draws from a seeded hash-deterministic plan
(:func:`repro.util.stable_fraction`, the same no-process-randomness idiom
the rest of the repo uses) to decide whether to raise a timeout, a
transient backend error, a rate limit — or to corrupt the completion
(empty text, truncated/garbage SQL). Two runs with the same seed and call
sequence inject exactly the same faults, so chaos experiments are as
reproducible as the fault-free ones.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields, replace
from typing import Sequence

from repro import obs
from repro.errors import (
    LLMError,
    LLMTimeoutError,
    RateLimitError,
    TransientLLMError,
)
from repro.llm.interface import ChatModel, Completion, Prompt

#: Injectable fault kinds, in the order the plan's bands are laid out.
FAULT_TIMEOUT = "timeout"
FAULT_TRANSIENT = "transient"
FAULT_RATE_LIMIT = "rate_limit"
FAULT_EMPTY = "empty"
FAULT_TRUNCATE = "truncate"

FAULT_KINDS = (
    FAULT_TIMEOUT,
    FAULT_TRANSIENT,
    FAULT_RATE_LIMIT,
    FAULT_EMPTY,
    FAULT_TRUNCATE,
)


@dataclass(frozen=True)
class FaultProfile:
    """Per-call fault rates (each in [0, 1]; bands must sum to <= 1).

    Attributes:
        timeout_rate: Probability the call raises :class:`LLMTimeoutError`.
        transient_rate: Probability of a :class:`TransientLLMError`.
        rate_limit_rate: Probability of a :class:`RateLimitError`.
        empty_rate: Probability the completion text comes back empty.
        truncate_rate: Probability the completion text is truncated and
            garbled (models a cut-off / hallucinated generation).
        seed: Seed for the deterministic fault plan.
    """

    timeout_rate: float = 0.0
    transient_rate: float = 0.0
    rate_limit_rate: float = 0.0
    empty_rate: float = 0.0
    truncate_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name, rate in self._rates().items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} out of [0, 1]: {rate}")
        if self.combined_rate > 1.0:
            raise ValueError(
                f"combined fault rate exceeds 1.0: {self.combined_rate}"
            )

    def _rates(self) -> dict[str, float]:
        return {
            FAULT_TIMEOUT: self.timeout_rate,
            FAULT_TRANSIENT: self.transient_rate,
            FAULT_RATE_LIMIT: self.rate_limit_rate,
            FAULT_EMPTY: self.empty_rate,
            FAULT_TRUNCATE: self.truncate_rate,
        }

    @property
    def combined_rate(self) -> float:
        """Total probability that a call is perturbed at all."""
        return sum(self._rates().values())

    def fault_for(self, draw: float) -> str | None:
        """Map one uniform draw in [0, 1) onto a fault kind (or None)."""
        cursor = 0.0
        for kind, rate in self._rates().items():
            cursor += rate
            if draw < cursor:
                return kind
        return None


#: Named profiles selectable via ``--inject-faults NAME``.
FAULT_PROFILES: dict[str, FaultProfile] = {
    # No faults at all: wraps without perturbing (sanity baseline).
    "none": FaultProfile(),
    # The documented chaos baseline: 16% of calls perturbed.
    "default": FaultProfile(
        timeout_rate=0.04,
        transient_rate=0.04,
        rate_limit_rate=0.02,
        empty_rate=0.03,
        truncate_rate=0.03,
    ),
    # Retry-heavy: mostly transient faults a retry policy should absorb.
    "flaky": FaultProfile(
        timeout_rate=0.08,
        transient_rate=0.12,
        rate_limit_rate=0.05,
    ),
    # Breaker-heavy: enough hard failures to trip a circuit breaker.
    "outage": FaultProfile(
        timeout_rate=0.20,
        transient_rate=0.25,
        rate_limit_rate=0.05,
        empty_rate=0.05,
        truncate_rate=0.05,
    ),
}

_RATE_ALIASES = {kind: f"{kind}_rate" for kind in FAULT_KINDS}


def resolve_fault_profile(spec: str, seed: int = 0) -> FaultProfile:
    """Resolve ``--inject-faults`` input to a :class:`FaultProfile`.

    ``spec`` is either a named profile (``default``, ``flaky``, …) or a
    comma-separated rate spec like ``timeout=0.1,empty=0.05``. ``seed``
    applies unless the spec sets its own (``seed=N``).

    Raises:
        ValueError: on unknown names/keys or malformed values.
    """
    text = spec.strip()
    if text in FAULT_PROFILES:
        return replace(FAULT_PROFILES[text], seed=seed)
    if "=" not in text:
        names = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(
            f"unknown fault profile {spec!r}; named profiles: {names}, "
            "or a spec like 'timeout=0.1,empty=0.05'"
        )
    values: dict[str, object] = {"seed": seed}
    valid = {f.name for f in fields(FaultProfile)}
    for part in text.split(","):
        key, _, raw = part.partition("=")
        key = key.strip()
        key = _RATE_ALIASES.get(key, key)
        if key not in valid:
            raise ValueError(f"unknown fault profile key {key!r} in {spec!r}")
        try:
            values[key] = int(raw) if key == "seed" else float(raw)
        except ValueError:
            raise ValueError(
                f"malformed value for {key!r} in fault spec {spec!r}: {raw!r}"
            ) from None
    return FaultProfile(**values)  # type: ignore[arg-type]


def _truncate_text(text: str, draw: float) -> str:
    """Deterministically garble a completion (cut-off mid-generation)."""
    if not text:
        return "SELEC"
    cut = max(1, int(len(text) * (0.3 + 0.4 * draw)))
    return text[:cut] + " ..."


class FaultInjectingChatModel:
    """A :class:`ChatModel` wrapper that injects seeded deterministic faults.

    The per-call decision is keyed by ``(seed, call_index)``, so the fault
    sequence depends only on the profile and the order of calls — retries
    count as fresh calls and draw fresh faults, exactly like a real flaky
    backend. ``fault_counts`` tallies injections for tests and reports
    that run without the obs layer enabled.
    """

    def __init__(self, inner: ChatModel, profile: FaultProfile) -> None:
        self._inner = inner
        self._profile = profile
        self._lock = threading.Lock()
        self._calls = 0
        self.fault_counts: dict[str, int] = {}

    @property
    def inner(self) -> ChatModel:
        return self._inner

    @property
    def profile(self) -> FaultProfile:
        return self._profile

    @property
    def calls(self) -> int:
        """Total completion calls seen (faulted or not)."""
        return self._calls

    def complete(self, prompt: Prompt) -> Completion:
        from repro.util import stable_fraction

        with self._lock:
            self._calls += 1
            index = self._calls
        fault = self._profile.fault_for(
            stable_fraction("fault", self._profile.seed, index)
        )
        if fault is None:
            return self._inner.complete(prompt)

        with self._lock:
            self.fault_counts[fault] = self.fault_counts.get(fault, 0) + 1
        obs.count("llm.faults.injected", kind=fault)
        if fault == FAULT_TIMEOUT:
            raise LLMTimeoutError(
                f"injected timeout (call #{index}, kind={prompt.kind})"
            )
        if fault == FAULT_TRANSIENT:
            raise TransientLLMError(
                f"injected transient backend error (call #{index})"
            )
        if fault == FAULT_RATE_LIMIT:
            raise RateLimitError(f"injected rate limit (call #{index})")
        if fault == FAULT_EMPTY:
            return Completion(text="", notes=["injected empty completion"])
        completion = self._inner.complete(prompt)
        garbled = _truncate_text(
            completion.text,
            stable_fraction("truncate", self._profile.seed, index),
        )
        return Completion(
            text=garbled,
            notes=completion.notes + ["injected truncated completion"],
        )

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        """Batch completion with the same per-index fault plan.

        Items are drawn in prompt order, so a batch of N prompts consumes
        exactly the same fault-plan indices as N sequential calls — the
        injected fault sequence is independent of batching. The first
        faulted item's error propagates (use ``complete_batch_settled``
        for per-item outcomes).
        """
        return [self.complete(prompt) for prompt in prompts]

    def complete_batch_settled(
        self, prompts: Sequence[Prompt]
    ) -> "list[Completion | LLMError]":
        """Per-item settled batch: every prompt draws its fault, errors
        settle in place instead of aborting the remainder of the batch."""
        outcomes: list[Completion | LLMError] = []
        for prompt in prompts:
            try:
                outcomes.append(self.complete(prompt))
            except LLMError as error:
                outcomes.append(error)
        return outcomes
