"""``repro.resilience`` — fault injection and resilience policies.

The FISQL loop only pays off if every round completes, yet a real API
backend times out, rate-limits, and returns garbage. This package makes
those failure modes (a) reproducible — :class:`FaultInjectingChatModel`
perturbs any :class:`~repro.llm.interface.ChatModel` under a seeded
deterministic fault plan — and (b) survivable —
:class:`ResilientChatModel` adds retry with exponential backoff + jitter,
a per-call deadline budget, and a circuit breaker, all against an
injectable clock so tests and chaos runs never really sleep.

Layering (outermost first)::

    ResilientChatModel( FaultInjectingChatModel( SimulatedLLM() ) )

Everything downstream of the wrappers (pipeline, harness, CLI) degrades
gracefully when an :class:`~repro.errors.LLMError` escapes retry; see
DESIGN.md "Resilience & chaos testing" for the full semantics.
"""

from __future__ import annotations

from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FaultInjectingChatModel,
    FaultProfile,
    resolve_fault_profile,
)
from repro.resilience.policies import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResilientChatModel,
    RetryPolicy,
    VirtualClock,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "FaultInjectingChatModel",
    "FaultProfile",
    "ResilientChatModel",
    "RetryPolicy",
    "VirtualClock",
    "resolve_fault_profile",
]
