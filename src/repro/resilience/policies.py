"""Retry/backoff, deadline budgets, and circuit breaking for chat models.

:class:`ResilientChatModel` wraps any :class:`ChatModel` with the three
classic client-side policies:

* **Retry with exponential backoff + jitter** for
  :class:`~repro.errors.TransientLLMError` (timeouts and rate limits
  included). Jitter is hash-deterministic (seeded), so a chaos run's retry
  schedule is exactly reproducible.
* **Per-call deadline budget**: retries stop once the wrapped call —
  including backoff sleeps — has consumed ``deadline_ms``.
* **Circuit breaker** (closed → open → half-open): after
  ``failure_threshold`` consecutive failures the breaker opens and calls
  fail fast with :class:`~repro.errors.CircuitOpenError`; after
  ``reset_after_ms`` one probe call is let through (half-open) and its
  outcome closes or re-opens the circuit.

Clock and sleep are injectable. :class:`VirtualClock` pairs both so tests
and CLI chaos runs simulate backoff instantly while still recording real
schedule timings in the ``llm.retry_backoff_ms`` histogram.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro import obs
from repro.errors import CircuitOpenError, LLMError, TransientLLMError
from repro.llm.interface import ChatModel, Completion, Prompt
from repro.util import stable_fraction

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class VirtualClock:
    """A monotonic clock whose time advances on ``sleep`` (and, optionally,
    by ``tick`` seconds per reading).

    Pass ``clock.now``/``clock.sleep`` (or the instance itself as the
    clock) to the policies below: backoff waits become instantaneous while
    deadlines and breaker cooldowns still observe a consistent timeline.
    A non-zero ``tick`` models per-call latency, letting an open breaker's
    cooldown elapse with call traffic even though nothing really sleeps.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        if tick < 0:
            raise ValueError(f"tick must be >= 0: {tick}")
        self._now = start
        self._tick = tick

    def now(self) -> float:
        value = self._now
        self._now += self._tick
        return value

    __call__ = now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Alias of :meth:`sleep` for test readability."""
        self.sleep(seconds)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline configuration for :class:`ResilientChatModel`.

    Attributes:
        max_retries: Extra attempts after the first call (0 disables retry).
        base_backoff_ms: Backoff before the first retry; doubles per retry.
        max_backoff_ms: Cap on a single backoff wait.
        jitter: Fractional jitter; each wait is scaled by a deterministic
            factor in ``[1 - jitter, 1 + jitter]``.
        deadline_ms: Per-call budget across attempts and backoff sleeps;
            ``None`` disables the budget.
        seed: Seed for the deterministic jitter sequence.
    """

    max_retries: int = 2
    base_backoff_ms: float = 50.0
    max_backoff_ms: float = 2000.0
    jitter: float = 0.1
    deadline_ms: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter out of [0, 1]: {self.jitter}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0: {self.deadline_ms}")

    def backoff_ms(self, retry_index: int, sequence: int) -> float:
        """The wait before retry ``retry_index`` (1-based), with jitter.

        ``sequence`` is a monotonically increasing retry counter from the
        caller; keying the jitter on it makes the whole schedule a pure
        function of (policy, call order).
        """
        raw = min(
            self.max_backoff_ms,
            self.base_backoff_ms * (2.0 ** (retry_index - 1)),
        )
        spread = 2.0 * stable_fraction("backoff", self.seed, sequence) - 1.0
        return raw * (1.0 + self.jitter * spread)


class CircuitBreaker:
    """A closed/open/half-open circuit breaker over consecutive failures.

    ``name`` and ``labels`` identify the breaker on its
    ``breaker.transition`` structured-log events (e.g. ``tenant=acme`` for
    a tenant stack, ``backend=primary`` for a router backend), so state
    changes are observable as they happen instead of only by polling
    :attr:`state`.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_ms: float = 30_000.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
        labels: Optional[dict] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if reset_after_ms <= 0:
            raise ValueError(f"reset_after_ms must be > 0: {reset_after_ms}")
        self._failure_threshold = failure_threshold
        self._reset_after_ms = reset_after_ms
        self._clock = clock
        self._name = name
        self._labels = dict(labels or {})
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    @property
    def name(self) -> str:
        return self._name

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def time_until_probe(self) -> Optional[float]:
        """Milliseconds until an open breaker admits its half-open probe.

        ``None`` while closed (no probe pending); ``0.0`` when a probe
        would be admitted right now (cooldown elapsed, or already
        half-open awaiting one).
        """
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return None
            if self._state == BREAKER_HALF_OPEN:
                return 0.0
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            return max(0.0, self._reset_after_ms - elapsed_ms)

    def _transition(self, state: str) -> None:
        # Lock is held by the caller.
        if state != self._state:
            previous = self._state
            self._state = state
            obs.count("llm.breaker.state", state=state)
            obs.event(
                "breaker.transition",
                breaker=self._name,
                from_state=previous,
                to_state=state,
                **self._labels,
            )

    def allow(self) -> bool:
        """Whether a call may proceed; drives the open → half-open probe."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            if self._state == BREAKER_OPEN:
                if elapsed_ms < self._reset_after_ms:
                    return False
                self._transition(BREAKER_HALF_OPEN)
                self._probe_in_flight = True
                return True
            # Half-open: one probe at a time.
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            if self._state == BREAKER_HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(BREAKER_OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(BREAKER_OPEN)


class ResilientChatModel:
    """A :class:`ChatModel` wrapper applying retry, deadline, and breaker.

    Emits ``llm.retries`` / ``llm.giveups`` / ``llm.breaker.rejections``
    counters and the ``llm.retry_backoff_ms`` histogram via ``repro.obs``;
    mirrored in the ``retries``/``giveups``/``rejections`` attributes so
    uninstrumented tests can assert on behaviour directly.
    """

    def __init__(
        self,
        inner: ChatModel,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._inner = inner
        self._retry = retry or RetryPolicy()
        self._breaker = breaker
        self._clock = clock
        self._sleep = sleep
        self._retry_sequence = 0
        self.retries = 0
        self.giveups = 0
        self.rejections = 0

    @property
    def inner(self) -> ChatModel:
        return self._inner

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        """The stack's circuit breaker (readiness probes read its state)."""
        return self._breaker

    def complete(self, prompt: Prompt) -> Completion:
        started = self._clock()
        retry_index = 0
        while True:
            if self._breaker is not None and not self._breaker.allow():
                self.rejections += 1
                obs.count("llm.breaker.rejections")
                raise CircuitOpenError(
                    "circuit breaker is open; rejecting LLM call "
                    f"(kind={prompt.kind})"
                )
            try:
                completion = self._inner.complete(prompt)
            except TransientLLMError as error:
                if self._breaker is not None:
                    self._breaker.record_failure()
                retry_index += 1
                if retry_index > self._retry.max_retries:
                    self._give_up("retries_exhausted", error)
                remaining = self._remaining_ms(started)
                if remaining is not None and remaining <= 0:
                    self._give_up("deadline", error)
                self.retries += 1
                self._retry_sequence += 1
                backoff = self._round_backoff_ms(
                    retry_index, self._retry_sequence, error, remaining
                )
                obs.count("llm.retries", kind=prompt.kind)
                obs.observe("llm.retry_backoff_ms", backoff)
                obs.event(
                    "llm.retry",
                    kind=prompt.kind,
                    attempt=retry_index,
                    backoff_ms=backoff,
                )
                self._sleep(backoff / 1000.0)
            except LLMError:
                if self._breaker is not None:
                    self._breaker.record_failure()
                raise
            else:
                if self._breaker is not None:
                    self._breaker.record_success()
                return completion

    def complete_batch(self, prompts: Sequence[Prompt]) -> list[Completion]:
        """Strict batch: per-item policies apply; the first failed item's
        error (by prompt index) propagates after the batch settles."""
        outcomes = self.complete_batch_settled(prompts)
        for outcome in outcomes:
            if isinstance(outcome, LLMError):
                raise outcome
        return outcomes  # type: ignore[return-value]

    def complete_batch_settled(
        self, prompts: Sequence[Prompt]
    ) -> "list[Union[Completion, LLMError]]":
        """Batch completion with per-item retry/deadline and a shared breaker.

        Round-based: each round asks the breaker per still-pending item,
        dispatches the survivors as one inner batch, classifies the settled
        outcomes (success / retryable / fatal), and sleeps once for the
        round's longest backoff — per-item waits overlap instead of
        summing, which is the batched analogue of the sequential schedule.
        Counters (``llm.retries``, ``llm.giveups``,
        ``llm.breaker.rejections``) keep their sequential names.
        """
        from repro.llm.dispatch import _settle_batch

        prompts = list(prompts)
        results: list[Optional[Union[Completion, LLMError]]] = [None] * len(
            prompts
        )
        started = self._clock()
        # (index, retry_index) for items still awaiting a final outcome.
        pending: list[tuple[int, int]] = [(i, 0) for i in range(len(prompts))]
        while pending:
            allowed: list[tuple[int, int]] = []
            for index, retry_index in pending:
                if self._breaker is not None and not self._breaker.allow():
                    self.rejections += 1
                    obs.count("llm.breaker.rejections")
                    results[index] = CircuitOpenError(
                        "circuit breaker is open; rejecting LLM call "
                        f"(kind={prompts[index].kind})"
                    )
                else:
                    allowed.append((index, retry_index))
            if not allowed:
                break
            settled = _settle_batch(
                self._inner, [prompts[index] for index, _ in allowed]
            )
            next_pending: list[tuple[int, int]] = []
            round_backoff = 0.0
            for (index, retry_index), outcome in zip(allowed, settled):
                if isinstance(outcome, Completion):
                    if self._breaker is not None:
                        self._breaker.record_success()
                    results[index] = outcome
                    continue
                if self._breaker is not None:
                    self._breaker.record_failure()
                if not isinstance(outcome, TransientLLMError):
                    results[index] = outcome
                    continue
                retry_index += 1
                if retry_index > self._retry.max_retries:
                    self._record_giveup("retries_exhausted")
                    results[index] = outcome
                    continue
                remaining = self._remaining_ms(started)
                if remaining is not None and remaining <= 0:
                    self._record_giveup("deadline")
                    results[index] = outcome
                    continue
                self.retries += 1
                self._retry_sequence += 1
                backoff = self._round_backoff_ms(
                    retry_index, self._retry_sequence, outcome, remaining
                )
                obs.count("llm.retries", kind=prompts[index].kind)
                obs.observe("llm.retry_backoff_ms", backoff)
                obs.event(
                    "llm.retry",
                    kind=prompts[index].kind,
                    attempt=retry_index,
                    backoff_ms=backoff,
                )
                round_backoff = max(round_backoff, backoff)
                next_pending.append((index, retry_index))
            pending = next_pending
            if pending:
                self._sleep(round_backoff / 1000.0)
        return results  # type: ignore[return-value]

    def _round_backoff_ms(
        self,
        retry_index: int,
        sequence: int,
        error: TransientLLMError,
        remaining: Optional[float],
    ) -> float:
        """This round's wait: the backend's ``Retry-After`` hint when the
        error carries one (a 429/503 that told us exactly when to come
        back), else the computed exponential schedule — either way bounded
        by what is left of the deadline budget."""
        retry_after = getattr(error, "retry_after_ms", None)
        if retry_after is not None and retry_after >= 0:
            backoff = float(retry_after)
        else:
            backoff = self._retry.backoff_ms(retry_index, sequence)
        if remaining is not None:
            backoff = min(backoff, remaining)
        return backoff

    def _remaining_ms(self, started: float) -> Optional[float]:
        if self._retry.deadline_ms is None:
            return None
        elapsed_ms = (self._clock() - started) * 1000.0
        return self._retry.deadline_ms - elapsed_ms

    def _record_giveup(self, reason: str) -> None:
        self.giveups += 1
        obs.count("llm.giveups", reason=reason)

    def _give_up(self, reason: str, error: TransientLLMError) -> None:
        self._record_giveup(reason)
        raise error
