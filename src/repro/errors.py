"""Exception hierarchy for the FISQL reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class. Subsystems refine it: the SQL engine raises
:class:`SqlError` subclasses, the dataset generators raise
:class:`DatasetError`, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SqlError(ReproError):
    """Base class for SQL engine errors."""


class LexError(SqlError):
    """Raised when the lexer encounters malformed SQL text."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when SQL text does not match the supported grammar."""


class CatalogError(SqlError):
    """Raised for unknown tables/columns or schema violations."""


class TypeMismatchError(SqlError):
    """Raised when a value cannot be coerced to a column's declared type."""


class ExecutionError(SqlError):
    """Raised when a syntactically valid query fails during execution."""


class EditError(ReproError):
    """Raised when an AST edit operation cannot be applied."""


class DatasetError(ReproError):
    """Raised by the synthetic dataset generators."""


class PromptError(ReproError):
    """Raised when a prompt cannot be built or understood by the LLM sim."""


class LLMError(ReproError):
    """Base class for chat-model backend failures.

    The resilience layer (:mod:`repro.resilience`) raises and handles this
    family; the pipeline treats any ``LLMError`` that escapes retry as a
    signal to degrade gracefully rather than abort the run.
    """


class TransientLLMError(LLMError):
    """A retryable backend failure (5xx-style blip, dropped connection).

    ``retry_after_ms`` carries the backend's own pacing hint (an HTTP
    ``Retry-After`` header on a 429/503). When set, the retry policy uses
    it as that round's backoff instead of the computed exponential
    schedule, still bounded by the call's deadline budget.
    """

    def __init__(
        self, message: str, retry_after_ms: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class LLMTimeoutError(TransientLLMError):
    """The backend did not answer within the deadline."""


class RateLimitError(TransientLLMError):
    """The backend rejected the call for quota/rate reasons (429-style)."""


class CircuitOpenError(LLMError):
    """The circuit breaker is open; the call was rejected locally.

    Not retryable by the policy that raised it: the breaker exists to stop
    hammering a failing backend, so callers should degrade instead.
    """


class NoHealthyBackendError(CircuitOpenError):
    """Every backend in the routing pool is ejected or circuit-open.

    A :class:`CircuitOpenError` subclass so the serve layer maps it to the
    same 503 fail-fast path as a single open breaker.
    """


class OverloadError(ReproError):
    """The request was shed before doing work: the system is over capacity.

    Raised by the serve layer's load-shedding gate (queue-depth caps,
    request deadlines) and by a draining/full
    :class:`~repro.llm.dispatch.BatchingChatModel`. Deliberately *not* an
    :class:`LLMError`: retry policies must not burn attempts on a request
    the system chose to reject, and the server maps it to a structured
    429/503 instead of a 502.
    """

    def __init__(
        self,
        message: str,
        reason: str = "overloaded",
        retry_after_s: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        #: Suggested client backoff (seconds); the serve layer surfaces it
        #: as a ``Retry-After`` response header on the shed 429/503.
        self.retry_after_s = retry_after_s


class FeedbackError(ReproError):
    """Raised when user feedback cannot be interpreted at all."""
