"""``repro.obs`` — zero-dependency observability for the FISQL stack.

A process-global facade over :class:`~repro.obs.tracer.Tracer` (nested,
timed spans) and :class:`~repro.obs.metrics.MetricsRegistry` (counters +
histograms). Disabled by default: every hook returns a shared no-op object
or falls through on a single boolean check, so instrumented hot paths pay
~nothing until :func:`enable` is called (the CLI's ``--metrics`` /
``--trace`` flags do this).

Call-site idioms::

    from repro import obs

    obs.count("llm.calls", kind=prompt.kind)
    with obs.span("correction.round", round=i), obs.timer("llm.latency_ms"):
        ...

``enable()`` installs *fresh* registries (so repeated runs don't bleed into
each other), ``snapshot()`` returns a plain-dict summary for
:func:`repro.obs.reporting.render_run_report`, and ``export_jsonl()``
writes the documented JSONL trace (see :mod:`repro.obs.export`).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.obs.context import (
    current_request_id,
    deterministic_id_factory,
    new_request_id,
    request_context,
)
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    read_trace_jsonl,
    trace_lines,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    NOOP_TIMER,
    MetricsRegistry,
    find_histogram,
    percentile,
    summarize_histogram,
)
from repro.obs.structured_log import StructuredLog
from repro.obs.telemetry import (
    RollingCounter,
    RollingHistogram,
    SloPolicy,
    TelemetryHub,
)
from repro.obs.trace_summary import summarize_trace, summarize_trace_file
from repro.obs.tracer import (
    DEFAULT_MAX_SPANS,
    NOOP_SPAN,
    ActiveSpan,
    SpanRecord,
    Tracer,
)

__all__ = [
    "ActiveSpan",
    "DEFAULT_MAX_SPANS",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NOOP_TIMER",
    "RollingCounter",
    "RollingHistogram",
    "SloPolicy",
    "SpanRecord",
    "StructuredLog",
    "TRACE_SCHEMA_VERSION",
    "TelemetryHub",
    "Tracer",
    "count",
    "current_request_id",
    "deterministic_id_factory",
    "disable",
    "enable",
    "event",
    "export_jsonl",
    "find_histogram",
    "get_event_log",
    "get_metrics",
    "get_tracer",
    "is_enabled",
    "new_request_id",
    "observe",
    "percentile",
    "read_trace_jsonl",
    "request_context",
    "set_event_log",
    "snapshot",
    "span",
    "summarize_histogram",
    "summarize_trace",
    "summarize_trace_file",
    "timer",
    "trace_lines",
    "write_trace_jsonl",
]


class _State:
    """The process-global observability state."""

    __slots__ = ("enabled", "tracer", "metrics", "events")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.events: Optional[StructuredLog] = None


_STATE = _State()


def enable(
    clock: Optional[Callable[[], float]] = None,
    max_spans: int = DEFAULT_MAX_SPANS,
) -> None:
    """Turn instrumentation on with a *fresh* tracer and metrics registry."""
    resolved_clock = clock or time.perf_counter
    _STATE.tracer = Tracer(clock=resolved_clock, max_spans=max_spans)
    _STATE.metrics = MetricsRegistry(clock=resolved_clock)
    _STATE.enabled = True


def disable() -> None:
    """Turn instrumentation off; hooks revert to no-ops."""
    _STATE.enabled = False
    _STATE.tracer = None
    _STATE.metrics = None
    if _STATE.events is not None:
        _STATE.events.close()
        _STATE.events = None


def is_enabled() -> bool:
    """Whether instrumentation is currently live."""
    return _STATE.enabled


def get_tracer() -> Optional[Tracer]:
    """The live tracer (None when disabled)."""
    return _STATE.tracer


def get_metrics() -> Optional[MetricsRegistry]:
    """The live metrics registry (None when disabled)."""
    return _STATE.metrics


# -- instrumentation hooks (no-ops when disabled) --------------------------------


def span(name: str, **attributes: object):
    """Open a traced span (``with obs.span("name", key=value):``)."""
    if not _STATE.enabled:
        return NOOP_SPAN
    return _STATE.tracer.span(name, **attributes)


def count(name: str, n: float = 1, **labels: object) -> None:
    """Increment a counter."""
    if _STATE.enabled:
        _STATE.metrics.count(name, n, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Record one histogram observation."""
    if _STATE.enabled:
        _STATE.metrics.observe(name, value, **labels)


def timer(name: str, **labels: object):
    """Time a block into a latency histogram (milliseconds)."""
    if not _STATE.enabled:
        return NOOP_TIMER
    return _STATE.metrics.timer(name, **labels)


# -- structured event log --------------------------------------------------------


def set_event_log(log: Optional[StructuredLog]) -> None:
    """Install (or, with None, detach) the structured JSONL event sink.

    Independent of :func:`enable`: the event log is an *operational*
    surface (the serve ``--log-dir`` flag), not a batch-run report, so it
    has its own lifecycle. :func:`disable` closes and detaches it too.
    """
    if _STATE.events is not None and _STATE.events is not log:
        _STATE.events.close()
    _STATE.events = log


def get_event_log() -> Optional[StructuredLog]:
    """The live structured log (None when not installed)."""
    return _STATE.events


def event(name: str, **fields: object) -> None:
    """Emit one structured event (no-op without an installed log).

    The current request id is stamped automatically (see
    :mod:`repro.obs.context`).
    """
    if _STATE.events is not None:
        _STATE.events.event(name, **fields)


# -- run summaries ---------------------------------------------------------------


def snapshot() -> dict:
    """Counters, histogram summaries, and per-span-name rollups as a dict."""
    if not _STATE.enabled:
        return {
            "enabled": False,
            "counters": [],
            "histograms": [],
            "spans": [],
            "dropped_spans": 0,
        }
    metrics_snapshot = _STATE.metrics.snapshot()
    return {
        "enabled": True,
        "counters": metrics_snapshot["counters"],
        "histograms": metrics_snapshot["histograms"],
        "spans": _STATE.tracer.aggregate(),
        "dropped_spans": _STATE.tracer.dropped,
    }


def export_jsonl(path: Union[str, Path]) -> int:
    """Write the JSONL trace for the current run; returns lines written."""
    if not _STATE.enabled:
        raise RuntimeError("observability is disabled; nothing to export")
    return write_trace_jsonl(path, _STATE.tracer, _STATE.metrics)
