"""Rotating structured JSONL event log (the serve ``--log-dir`` sink).

One canonical-JSON object per line. Every event carries:

* ``ts`` — wall-clock seconds (injectable clock, so tests are stable),
* ``event`` — the event name (``serve.request``, ``llm.batch``,
  ``llm.retry``, ``journal.append``, ...),
* ``request_id`` — stamped automatically from the correlation context
  (:mod:`repro.obs.context`) when a request is being served; omitted
  otherwise, so batch-run logs don't grow a null field.

Rotation is size-based: the active file is ``events.jsonl``; once a write
pushes it past ``max_bytes`` it is renamed (``os.replace``, the same
atomic primitive as :mod:`repro.durability.atomic`) to
``events-NNNNNN.jsonl`` and a fresh active file is opened. At most
``max_files`` rotated files are kept; older ones are deleted. Lines are
flushed on every event — the log is an operational surface, tail -f must
see events as they happen — but not fsync'd: durability is the journal's
job, not the event log's.
"""

from __future__ import annotations

import os
import re
import threading
import time
from pathlib import Path
from typing import Callable, Optional, TextIO, Union

from repro.durability.atomic import canonical_json
from repro.obs.context import current_request_id

#: Active file name inside a ``--log-dir`` directory.
LOG_FILENAME = "events.jsonl"

#: Default rotation threshold (bytes) and retained rotated files.
DEFAULT_MAX_BYTES = 10 * 1024 * 1024
DEFAULT_MAX_FILES = 5

_ROTATED_RE = re.compile(r"^events-(\d{6})\.jsonl$")


class StructuredLog:
    """Thread-safe, size-rotated JSONL event sink."""

    def __init__(
        self,
        directory: Union[str, Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1: {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1: {max_files}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._max_bytes = max_bytes
        self._max_files = max_files
        self._clock = clock
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        self._size = 0
        self._next_rotation = self._scan_rotations() + 1
        self.events = 0
        self.rotations = 0

    # -- introspection --------------------------------------------------------

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def path(self) -> Path:
        """The active log file."""
        return self._directory / LOG_FILENAME

    def files(self) -> list[Path]:
        """Every log file, oldest rotation first, active file last."""
        rotated = sorted(
            (
                path
                for path in self._directory.iterdir()
                if _ROTATED_RE.match(path.name)
            ),
            key=lambda path: path.name,
        )
        active = self.path
        return rotated + ([active] if active.exists() else [])

    def _scan_rotations(self) -> int:
        highest = 0
        for path in self._directory.iterdir():
            match = _ROTATED_RE.match(path.name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest

    # -- writing --------------------------------------------------------------

    def event(self, name: str, **fields: object) -> None:
        """Append one event line (flushed immediately)."""
        record: dict = {"ts": round(self._clock(), 6), "event": name}
        request_id = current_request_id()
        if request_id is not None:
            record["request_id"] = request_id
        record.update(fields)
        line = canonical_json(record) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            handle = self._ensure_open_locked()
            handle.write(line)
            handle.flush()
            self._size += len(data)
            self.events += 1
            if self._size >= self._max_bytes:
                self._rotate_locked()

    def _ensure_open_locked(self) -> TextIO:
        if self._handle is None:
            path = self.path
            self._handle = open(path, "a", encoding="utf-8")
            self._size = path.stat().st_size
        return self._handle

    def _rotate_locked(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        target = self._directory / f"events-{self._next_rotation:06d}.jsonl"
        self._next_rotation += 1
        try:
            os.replace(self.path, target)
        except OSError:
            return
        self._size = 0
        self.rotations += 1
        self._prune_locked()

    def _prune_locked(self) -> None:
        rotated = sorted(
            (
                path
                for path in self._directory.iterdir()
                if _ROTATED_RE.match(path.name)
            ),
            key=lambda path: path.name,
        )
        for victim in rotated[: max(0, len(rotated) - self._max_files)]:
            try:
                victim.unlink()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
