"""The ``fisql-repro top`` dashboard: a live terminal view of ``/statusz``.

Pure rendering: :func:`render_top` turns one ``/statusz`` payload into a
fixed-width ASCII dashboard (deterministic for a given payload, which is
what the snapshot test relies on); the CLI loop polls the endpoint every
``--interval`` seconds and repaints. Sections:

* header — readiness, drain state, resident sessions, inflight/gate
  utilization, windowed request/error/shed/cache rates;
* per-route latency table (count, rate, p50/p95/p99/max per window);
* per-tenant latency + SLO table (attainment and error-budget burn,
  flagged when burning above 1x);
* breaker states when any tenant's circuit is not closed.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Window columns shown in the tables, in display order.
DISPLAY_WINDOWS: Sequence[str] = ("1m", "5m", "15m")

#: ANSI clear-screen + home, used by the live loop between repaints.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def _table(headers: list, rows: list) -> str:
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def fmt(row: list) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([fmt(headers), rule] + [fmt(row) for row in rows])


def _ms(value: Optional[float]) -> str:
    return f"{value:.1f}" if value is not None else "-"


def _pct(value: Optional[float]) -> str:
    return f"{100.0 * value:.2f}%" if value is not None else "-"


def _header_lines(payload: dict) -> list:
    lines = []
    ready = payload.get("ready")
    draining = payload.get("draining")
    state = "DRAINING" if draining else ("ready" if ready else "NOT READY")
    sessions = payload.get("sessions", {})
    gate = payload.get("gate", {})
    inflight = gate.get("inflight", 0)
    cap = gate.get("max_inflight")
    utilization = gate.get("utilization")
    gate_text = f"inflight {inflight}"
    if cap is not None:
        gate_text += f"/{cap}"
    if utilization is not None:
        gate_text += f" ({_pct(utilization)})"
    lines.append(
        f"fisql-serve top — {state} | sessions "
        f"{sessions.get('resident', 0)}/{sessions.get('max_sessions', '-')} "
        f"(created {sessions.get('created', 0)}) | {gate_text} | "
        f"batch queue {payload.get('batch_queue_depth', 0)}"
    )
    rates = (payload.get("telemetry") or {}).get("rates", {})
    if rates:
        cells = []
        for window in DISPLAY_WINDOWS:
            view = rates.get(window)
            if view is None:
                continue
            cells.append(
                f"{window}: err {_pct(view.get('error_rate'))} "
                f"shed {_pct(view.get('shed_rate'))} "
                f"cache {_pct(view.get('cache_hit_rate'))}"
            )
        if cells:
            lines.append("rates     " + " | ".join(cells))
    return lines


def _route_rows(telemetry: dict) -> list:
    rows = []
    for route in sorted(telemetry.get("routes", {})):
        windows = telemetry["routes"][route]
        for window in DISPLAY_WINDOWS:
            summary = windows.get(window)
            if summary is None:
                continue
            rows.append(
                [
                    route if window == DISPLAY_WINDOWS[0] else "",
                    window,
                    int(summary.get("count", 0)),
                    f"{summary.get('rate_per_s', 0.0):.2f}",
                    _ms(summary.get("p50_ms")),
                    _ms(summary.get("p95_ms")),
                    _ms(summary.get("p99_ms")),
                    _ms(summary.get("max_ms")),
                ]
            )
    return rows


def _tenant_rows(telemetry: dict) -> list:
    rows = []
    for tenant in sorted(telemetry.get("tenants", {})):
        view = telemetry["tenants"][tenant]
        latency = view.get("latency", {})
        slo = view.get("slo", {})
        for window in DISPLAY_WINDOWS:
            summary = latency.get(window)
            slo_view = slo.get(window, {})
            if summary is None and not slo_view:
                continue
            summary = summary or {}
            burn = slo_view.get("burn_rate")
            burn_text = f"{burn:.2f}x" if burn is not None else "-"
            if burn is not None and burn > 1.0:
                burn_text += " !"
            rows.append(
                [
                    tenant if window == DISPLAY_WINDOWS[0] else "",
                    window,
                    int(summary.get("count", 0)),
                    _ms(summary.get("p50_ms")),
                    _ms(summary.get("p95_ms")),
                    _ms(summary.get("p99_ms")),
                    _pct(slo_view.get("attainment")),
                    burn_text,
                ]
            )
    return rows


def _cache_rows(telemetry: dict) -> list:
    """Window rows for the cache panel; empty when no semcache ran."""
    rates = telemetry.get("rates", {})
    if not any(
        "semcache_hit_rate" in (rates.get(window) or {})
        for window in DISPLAY_WINDOWS
    ):
        return []
    rows = []
    for window in DISPLAY_WINDOWS:
        view = rates.get(window)
        if view is None:
            continue
        rows.append(
            [
                window,
                _pct(view.get("cache_hit_rate")),
                _pct(view.get("semcache_hit_rate")),
                _pct(view.get("semcache_bypass_rate")),
            ]
        )
    return rows


def render_top(payload: dict) -> str:
    """One ``/statusz`` payload as the dashboard text."""
    parts = _header_lines(payload)
    telemetry = payload.get("telemetry") or {}
    slo = None
    for view in telemetry.get("tenants", {}).values():
        slo = view.get("slo", {})
        break
    if slo:
        parts.append(
            f"SLO objective: p({slo.get('target', '-')}) of requests under "
            f"{slo.get('objective_ms', '-')} ms"
        )

    route_rows = _route_rows(telemetry)
    parts.append("")
    parts.append("Routes")
    if route_rows:
        parts.append(
            _table(
                ["route", "win", "count", "req/s", "p50", "p95", "p99", "max"],
                route_rows,
            )
        )
    else:
        parts.append("(no traffic recorded yet)")

    tenant_rows = _tenant_rows(telemetry)
    parts.append("")
    parts.append("Tenants")
    if tenant_rows:
        parts.append(
            _table(
                [
                    "tenant",
                    "win",
                    "count",
                    "p50",
                    "p95",
                    "p99",
                    "slo",
                    "burn",
                ],
                tenant_rows,
            )
        )
    else:
        parts.append("(no tenant traffic recorded yet)")

    cache_rows = _cache_rows(telemetry)
    if cache_rows:
        # Rendered only for semantic-cache-enabled servers, so plain
        # deployments keep today's frame byte-for-byte.
        parts.append("")
        parts.append("Caches")
        parts.append(
            _table(
                ["win", "completion", "semantic", "bypass"],
                cache_rows,
            )
        )
        semcache = payload.get("semcache")
        if isinstance(semcache, dict):
            parts.append(
                f"semcache entries: {semcache.get('entries', 0)}"
                f"/{semcache.get('max_entries', '-')}"
                f" | invalidations: {semcache.get('invalidations', 0)}"
                f" | evictions: {semcache.get('evictions', 0)}"
            )

    breakers = payload.get("breakers", {})
    open_breakers = {
        tenant: state
        for tenant, state in sorted(breakers.items())
        if state != "closed"
    }
    if open_breakers:
        parts.append("")
        parts.append(
            "Breakers: "
            + ", ".join(
                f"{tenant}={state}" for tenant, state in open_breakers.items()
            )
        )
    return "\n".join(parts) + "\n"
