"""Render an ``obs`` snapshot as the human-readable run report.

The report is what ``fisql-repro … --metrics`` prints after the artifacts:
where wall-clock went (span rollup), LLM traffic per prompt kind, the
routing decision distribution, per-round correction counts, and SQL
parse/execute totals. Every section always prints — with an explicit
"(none recorded)" placeholder when a run never exercised that path — so
downstream tooling can grep for section headers unconditionally.

Metric names consumed here are the canonical instrumentation names; the
full catalogue is documented in DESIGN.md ("Observability").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.obs.metrics import find_histogram


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    rule = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _counter_entries(snapshot: dict, name: str) -> list[dict]:
    return [entry for entry in snapshot["counters"] if entry["name"] == name]


def _counter_total(snapshot: dict, name: str) -> float:
    return sum(entry["value"] for entry in _counter_entries(snapshot, name))


def _counter_by_label(snapshot: dict, name: str, label: str) -> dict:
    grouped: dict = {}
    for entry in _counter_entries(snapshot, name):
        key = entry["labels"].get(label)
        grouped[key] = grouped.get(key, 0) + entry["value"]
    return grouped


def _histogram(snapshot: dict, name: str, labels: Optional[dict] = None):
    return find_histogram(snapshot["histograms"], name, labels)


def _ms(value: float) -> str:
    return f"{value:.2f}"


def _int(value: float) -> str:
    return str(int(value))


def _section(title: str, body: str) -> str:
    return f"{title}\n{body}"


def _render_spans(snapshot: dict) -> str:
    rows = [
        [
            entry["name"],
            _int(entry["count"]),
            _ms(entry["total_ms"]),
            _ms(entry["mean_ms"]),
            _ms(entry["max_ms"]),
        ]
        for entry in snapshot["spans"]
    ]
    if not rows:
        return "(no spans recorded)"
    body = _table(["Span", "Count", "Total ms", "Mean ms", "Max ms"], rows)
    if snapshot.get("dropped_spans"):
        body += f"\n({snapshot['dropped_spans']} spans dropped past the cap)"
    return body


def _render_llm(snapshot: dict) -> str:
    calls_by_kind = _counter_by_label(snapshot, "llm.calls", "kind")
    hits = _counter_by_label(snapshot, "cache.hit", "kind")
    misses = _counter_by_label(snapshot, "cache.miss", "kind")
    batch = _histogram(snapshot, "llm.batch_size", {})
    sem_hits = _counter_total(snapshot, "semcache.hit")
    sem_misses = _counter_total(snapshot, "semcache.miss")
    sem_bypasses = _counter_total(snapshot, "semcache.bypass")
    sem_total = sem_hits + sem_misses + sem_bypasses
    if not calls_by_kind and not hits and not misses and not sem_total:
        return "(no LLM calls recorded)"
    lines = []
    if calls_by_kind:
        rows = []
        for kind in sorted(calls_by_kind, key=str):
            latency = _histogram(snapshot, "llm.latency_ms", {"kind": kind})
            rows.append(
                [
                    str(kind),
                    _int(calls_by_kind[kind]),
                    _ms(latency["sum"]) if latency else "-",
                    _ms(latency["mean"]) if latency else "-",
                    _ms(latency["p50"]) if latency else "-",
                    _ms(latency["p95"]) if latency else "-",
                ]
            )
        lines.append(
            _table(
                ["Prompt kind", "Calls", "Total ms", "Mean ms", "p50 ms", "p95 ms"],
                rows,
            )
        )
    if hits or misses:
        total_hits = sum(hits.values())
        total = total_hits + sum(misses.values())
        rate = 100.0 * total_hits / total if total else 0.0
        line = (
            f"completion cache: {_int(total_hits)}/{_int(total)} hits "
            f"({rate:.1f}%)"
        )
        if hits:
            line += f"; by kind: {_label_summary(hits)}"
        lines.append(line)
    if sem_total:
        # Only semantic-cache runs grow the report (byte-identity off-flag).
        answered = sem_hits + sem_misses
        sem_rate = 100.0 * sem_hits / answered if answered else 0.0
        line = (
            f"semantic cache: {_int(sem_hits)}/{_int(answered)} hits "
            f"({sem_rate:.1f}%), {_int(sem_bypasses)} bypassed"
        )
        invalidations = _counter_total(snapshot, "semcache.invalidate")
        if invalidations:
            line += f", {_int(invalidations)} invalidated"
        lines.append(line)
    if batch and batch["count"]:
        lines.append(
            f"batch dispatches: {_int(batch['count'])}, "
            f"mean size {batch['mean']:.1f}, max {_int(batch['max'])}"
        )
    return "\n".join(lines)


def _render_routing(snapshot: dict) -> str:
    decisions = _counter_by_label(snapshot, "routing.decisions", "decision")
    total = sum(decisions.values())
    if not total:
        return "(no routing decisions recorded)"
    rows = [
        [str(decision), _int(count), f"{100.0 * count / total:.1f}%"]
        for decision, count in sorted(decisions.items(), key=lambda kv: str(kv[0]))
    ]
    rows.append(["total", _int(total), "100.0%"])
    return _table(["Decision", "Count", "Share"], rows)


def _render_corrections(snapshot: dict) -> str:
    sessions = _counter_total(snapshot, "correction.sessions")
    rounds_by_index = _counter_by_label(snapshot, "correction.rounds", "round")
    corrected_by_index = _counter_by_label(snapshot, "correction.corrected", "round")
    if not sessions and not rounds_by_index:
        return "(no correction sessions recorded)"
    lines = [f"sessions: {_int(sessions)}"]
    indices = sorted(set(rounds_by_index) | set(corrected_by_index), key=str)
    rows = [
        [
            str(index),
            _int(rounds_by_index.get(index, 0)),
            _int(corrected_by_index.get(index, 0)),
        ]
        for index in indices
    ]
    if rows:
        lines.append(_table(["Round", "Rounds run", "Corrected"], rows))
    types = _counter_by_label(snapshot, "correction.feedback_types", "type")
    if types:
        summary = ", ".join(
            f"{kind}={_int(count)}"
            for kind, count in sorted(types.items(), key=lambda kv: str(kv[0]))
        )
        lines.append(f"feedback types: {summary}")
    highlighted = _counter_total(snapshot, "correction.highlighted_rounds")
    if highlighted:
        lines.append(f"highlighted rounds: {_int(highlighted)}")
    regressions = _counter_total(snapshot, "correction.parse_regressions")
    lines.append(f"unparseable revisions (rolled back): {_int(regressions)}")
    return "\n".join(lines)


def _render_sql(snapshot: dict) -> str:
    parse_calls = _counter_total(snapshot, "sql.parse.calls")
    parse_failures = _counter_total(snapshot, "sql.parse.failures")
    execute_calls = _counter_total(snapshot, "sql.execute.calls")
    execute_failures = _counter_total(snapshot, "sql.execute.failures")
    if not parse_calls and not execute_calls:
        return "(no SQL activity recorded)"
    lines = [
        f"parse: {_int(parse_calls)} calls, {_int(parse_failures)} failures",
        f"execute: {_int(execute_calls)} calls, {_int(execute_failures)} failures",
    ]
    latency = _histogram(snapshot, "sql.execute.latency_ms", {})
    if latency and latency["count"]:
        lines.append(
            "execute latency: "
            f"mean {_ms(latency['mean'])} ms, "
            f"p95 {_ms(latency['p95'])} ms, "
            f"max {_ms(latency['max'])} ms"
        )
    return "\n".join(lines)


def _label_summary(grouped: dict) -> str:
    return ", ".join(
        f"{key}={_int(value)}"
        for key, value in sorted(grouped.items(), key=lambda kv: str(kv[0]))
    )


def _render_resilience(snapshot: dict) -> str:
    lines = []
    faults = _counter_by_label(snapshot, "llm.faults.injected", "kind")
    if faults:
        lines.append(
            f"faults injected: {_int(sum(faults.values()))} "
            f"({_label_summary(faults)})"
        )
    retries = _counter_total(snapshot, "llm.retries")
    giveups = _counter_by_label(snapshot, "llm.giveups", "reason")
    total_giveups = sum(giveups.values())
    if retries or total_giveups:
        line = f"retries: {_int(retries)}, giveups: {_int(total_giveups)}"
        if total_giveups:
            line += f" ({_label_summary(giveups)})"
        lines.append(line)
    backoff = _histogram(snapshot, "llm.retry_backoff_ms", {})
    if backoff and backoff["count"]:
        lines.append(
            "retry backoff: "
            f"mean {_ms(backoff['mean'])} ms, "
            f"p95 {_ms(backoff['p95'])} ms, "
            f"max {_ms(backoff['max'])} ms"
        )
    transitions = _counter_by_label(snapshot, "llm.breaker.state", "state")
    rejections = _counter_total(snapshot, "llm.breaker.rejections")
    if transitions or rejections:
        summary = _label_summary(transitions) if transitions else "none"
        lines.append(
            f"breaker transitions: {summary}; "
            f"rejections: {_int(rejections)}"
        )
    # Routed-pool lines only appear when a RoutingChatModel ran, so the
    # single-model report stays byte-identical to pre-router runs.
    backend_outcomes: dict = {}
    for entry in _counter_entries(snapshot, "llm.backend"):
        labels = entry.get("labels", {})
        backend = str(labels.get("backend", "?"))
        outcome = str(labels.get("outcome", "?"))
        per = backend_outcomes.setdefault(backend, {})
        per[outcome] = per.get(outcome, 0) + entry["value"]
    if backend_outcomes:
        failovers = sum(
            per.get("failover", 0) for per in backend_outcomes.values()
        )
        hedges = sum(per.get("hedge", 0) for per in backend_outcomes.values())
        lines.append(
            f"backend failovers: {_int(failovers)}, "
            f"hedged requests: {_int(hedges)}"
        )
        for backend in sorted(backend_outcomes):
            lines.append(
                f"backend {backend}: "
                f"{_label_summary(backend_outcomes[backend])}"
            )
    ejections = _counter_by_label(snapshot, "llm.backend.ejections", "backend")
    readmissions = _counter_by_label(
        snapshot, "llm.backend.readmissions", "backend"
    )
    if ejections or readmissions:
        lines.append(
            f"backend ejections: {_int(sum(ejections.values()))}, "
            f"readmissions: {_int(sum(readmissions.values()))}"
        )
    degraded = _counter_by_label(snapshot, "resilience.degraded", "stage")
    if degraded:
        lines.append(
            f"degraded rounds: {_int(sum(degraded.values()))} "
            f"({_label_summary(degraded)})"
        )
    empty = _counter_total(snapshot, "correction.empty_completions")
    if empty:
        lines.append(f"empty completions: {_int(empty)}")
    skipped = _counter_total(snapshot, "eval.skipped_examples")
    if skipped:
        lines.append(f"eval examples skipped: {_int(skipped)}")
    aborted = _counter_total(snapshot, "eval.correction_failures")
    if aborted:
        lines.append(f"correction sessions aborted: {_int(aborted)}")
    if not lines:
        return "(no resilience activity recorded)"
    return "\n".join(lines)


def _render_durability(snapshot: dict) -> str:
    lines = []
    appended = _counter_by_label(snapshot, "journal.appended", "kind")
    replayed = _counter_by_label(snapshot, "journal.replayed", "kind")
    if appended or replayed:
        line = (
            f"journal: {_int(sum(appended.values()))} appended, "
            f"{_int(sum(replayed.values()))} replayed"
        )
        if replayed:
            line += f" (replayed by kind: {_label_summary(replayed)})"
        lines.append(line)
    sealed = _counter_total(snapshot, "journal.segments_sealed")
    if sealed:
        lines.append(f"journal segments sealed: {_int(sealed)}")
    suites_saved = _counter_total(snapshot, "suite.saved")
    suites_loaded = _counter_total(snapshot, "suite.loaded")
    # Suite timers carry a scale label; match by name only.
    build = _histogram(snapshot, "harness.suite_build_ms")
    load = _histogram(snapshot, "harness.suite_load_ms")
    if suites_saved or suites_loaded:
        lines.append(
            f"suites: {_int(suites_saved)} saved, {_int(suites_loaded)} loaded"
        )
    if build and build["count"]:
        lines.append(f"suite build: {_ms(build['sum'])} ms")
    if load and load["count"]:
        lines.append(f"suite load: {_ms(load['sum'])} ms")
    shed = _counter_by_label(snapshot, "serve.shed", "reason")
    if shed:
        lines.append(
            f"requests shed: {_int(sum(shed.values()))} "
            f"({_label_summary(shed)})"
        )
    batch_shed = _counter_by_label(snapshot, "llm.batch.shed", "reason")
    if batch_shed:
        lines.append(
            f"batched prompts shed: {_int(sum(batch_shed.values()))} "
            f"({_label_summary(batch_shed)})"
        )
    evictions = _counter_total(snapshot, "cache.evictions")
    if evictions:
        lines.append(f"cache entries evicted (LRU): {_int(evictions)}")
    quarantined = _counter_by_label(snapshot, "durability.quarantined", "kind")
    if quarantined:
        lines.append(
            f"corrupt files quarantined: {_int(sum(quarantined.values()))} "
            f"({_label_summary(quarantined)})"
        )
    degraded = _counter_by_label(snapshot, "durability.degraded", "kind")
    if degraded:
        lines.append(
            f"degraded writes (disk fault, in-memory fallback): "
            f"{_int(sum(degraded.values()))} ({_label_summary(degraded)})"
        )
    if not lines:
        return "(no durability activity recorded)"
    return "\n".join(lines)


def _render_pipeline(snapshot: dict) -> str:
    lines = []
    predictions = _counter_total(snapshot, "nl2sql.predictions")
    if predictions:
        failures = _counter_total(snapshot, "nl2sql.parse_failures")
        lines.append(
            f"nl2sql: {_int(predictions)} predictions, "
            f"{_int(failures)} unparseable"
        )
    retrievals = _counter_total(snapshot, "retrieval.calls")
    if retrievals:
        demos = _histogram(snapshot, "retrieval.demos", {})
        mean_demos = f"{demos['mean']:.1f}" if demos else "-"
        lines.append(
            f"retrieval: {_int(retrievals)} calls, {mean_demos} demos/call"
        )
    eval_by_verdict = _counter_by_label(snapshot, "eval.examples", "correct")
    evaluated = sum(eval_by_verdict.values())
    if evaluated:
        correct = eval_by_verdict.get(True, 0) + eval_by_verdict.get("true", 0)
        lines.append(f"evaluation: {_int(evaluated)} examples, {_int(correct)} correct")
    if not lines:
        return "(no pipeline activity recorded)"
    return "\n".join(lines)


def render_run_report(snapshot: dict) -> str:
    """The full run report for one ``obs`` snapshot."""
    title = "Run report (repro.obs)"
    sections: Sequence[tuple[str, str]] = (
        ("Wall-clock by span", _render_spans(snapshot)),
        ("LLM calls by prompt kind", _render_llm(snapshot)),
        ("Routing decision distribution", _render_routing(snapshot)),
        ("Correction rounds", _render_corrections(snapshot)),
        ("Resilience & degradation", _render_resilience(snapshot)),
        ("Durability & overload", _render_durability(snapshot)),
        ("SQL parse/execute", _render_sql(snapshot)),
        ("Pipeline counters", _render_pipeline(snapshot)),
    )
    parts = [title, "=" * len(title)]
    for header, body in sections:
        parts.append("")
        parts.append(_section(f"-- {header}", body))
    return "\n".join(parts)
