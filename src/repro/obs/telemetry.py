"""The live telemetry plane: windowed latency percentiles and SLOs.

The batch-run :class:`~repro.obs.metrics.MetricsRegistry` keeps *raw*
observations for exact percentiles over a whole run — perfect for a
reproducible report, useless for a live service where "p95 over the last
minute" matters and memory must stay bounded under heavy traffic. This
module adds the live half:

* :class:`RollingHistogram` — a ring of fixed-width time buckets, each a
  small log-scaled latency histogram. Recording is O(1) under one lock;
  memory is ``buckets × bins`` integers regardless of traffic. Summaries
  merge the buckets inside a window (1m/5m/15m) and estimate p50/p95/p99
  by interpolating inside the matched bin; ``max`` is tracked exactly.
* :class:`RollingCounter` — the same ring for event counts (requests,
  errors, sheds, cache hits), giving windowed totals and rates.
* :class:`TelemetryHub` — the per-route / per-tenant registry of the two,
  plus per-tenant SLO accounting against a latency objective: attainment
  (fraction of requests under the objective and not 5xx) and error-budget
  burn rate (1.0 = consuming budget exactly as fast as the target allows).

Every clock is injectable; tests drive the ring with
:class:`~repro.resilience.VirtualClock` and watch windows expire without
sleeping. The hub is owned by :class:`~repro.serve.server.ServeApp` — it
works whether or not the global ``obs`` switch is on, because a live
dashboard must not depend on a batch-run flag.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

#: The windows every surface reports, label -> seconds.
WINDOWS: dict[str, int] = {"1m": 60, "5m": 300, "15m": 900}

#: Upper bounds (ms) of the log-scaled latency bins. Doubling from 0.25 ms
#: to ~8.7 min keeps any estimate within ~±50% of the true value, which is
#: plenty to steer on; the final bin is open-ended.
LATENCY_BIN_BOUNDS: tuple[float, ...] = tuple(
    0.25 * (2.0**i) for i in range(22)
)

#: Ring geometry: 5-second buckets spanning the largest window (15m).
DEFAULT_BUCKET_SECONDS = 5.0
DEFAULT_BUCKET_COUNT = 180


@dataclass(frozen=True)
class WindowSummary:
    """Latency summary of one window of a :class:`RollingHistogram`."""

    window_s: float
    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "rate_per_s": round(self.count / self.window_s, 4)
            if self.window_s
            else 0.0,
        }


class _Bucket:
    """One time slice: bin counts plus exact count/sum/max."""

    __slots__ = ("index", "bins", "count", "sum", "max")

    def __init__(self, index: int, nbins: int) -> None:
        self.index = index
        self.bins = [0] * nbins
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def reset(self, index: int) -> None:
        self.index = index
        for i in range(len(self.bins)):
            self.bins[i] = 0
        self.count = 0
        self.sum = 0.0
        self.max = 0.0


class RollingHistogram:
    """Windowed latency percentiles over a ring of time buckets.

    ``observe(ms)`` lands the value in the bucket for "now"; buckets older
    than the ring span are lazily recycled as time advances, so expiry
    costs nothing when idle and O(ring) at worst after a long quiet gap.
    """

    def __init__(
        self,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        clock: Callable[[], float] = time.monotonic,
        bounds: tuple[float, ...] = LATENCY_BIN_BOUNDS,
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be > 0: {bucket_seconds}")
        if bucket_count < 1:
            raise ValueError(f"bucket_count must be >= 1: {bucket_count}")
        self._width = bucket_seconds
        self._clock = clock
        self._bounds = bounds
        # +1 bin: the open-ended overflow above the last bound.
        self._nbins = len(bounds) + 1
        self._lock = threading.Lock()
        self._ring = [_Bucket(-1, self._nbins) for _ in range(bucket_count)]

    @property
    def span_seconds(self) -> float:
        """The longest window the ring can answer for."""
        return self._width * len(self._ring)

    def _bucket_for_locked(self, now: float) -> _Bucket:
        index = int(now // self._width)
        bucket = self._ring[index % len(self._ring)]
        if bucket.index != index:
            bucket.reset(index)
        return bucket

    def observe(self, value_ms: float) -> None:
        """Record one latency observation (milliseconds)."""
        value_ms = max(0.0, float(value_ms))
        bin_index = bisect.bisect_left(self._bounds, value_ms)
        with self._lock:
            bucket = self._bucket_for_locked(self._clock())
            bucket.bins[bin_index] += 1
            bucket.count += 1
            bucket.sum += value_ms
            bucket.max = max(bucket.max, value_ms)

    def summary(self, window_s: float) -> WindowSummary:
        """Merge the live buckets inside ``window_s`` and summarize them."""
        window_s = min(window_s, self.span_seconds)
        with self._lock:
            now = self._clock()
            newest = int(now // self._width)
            oldest = int((now - window_s) // self._width)
            bins = [0] * self._nbins
            count = 0
            total = 0.0
            peak = 0.0
            for bucket in self._ring:
                if oldest < bucket.index <= newest:
                    for i, n in enumerate(bucket.bins):
                        bins[i] += n
                    count += bucket.count
                    total += bucket.sum
                    peak = max(peak, bucket.max)
        return WindowSummary(
            window_s=window_s,
            count=count,
            mean_ms=(total / count) if count else 0.0,
            p50_ms=self._estimate(bins, count, peak, 0.50),
            p95_ms=self._estimate(bins, count, peak, 0.95),
            p99_ms=self._estimate(bins, count, peak, 0.99),
            max_ms=peak,
        )

    def _estimate(
        self, bins: list, count: int, peak: float, q: float
    ) -> float:
        """Percentile estimate: interpolate inside the matched bin."""
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0.0
        for index, n in enumerate(bins):
            if n == 0:
                continue
            if seen + n >= rank:
                lower = self._bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else peak  # open-ended overflow bin: cap at the true max
                )
                upper = min(upper, peak) if peak else upper
                fraction = (rank - seen) / n
                return lower + (max(upper, lower) - lower) * fraction
            seen += n
        return peak


class RollingCounter:
    """Windowed event totals over the same ring geometry."""

    def __init__(
        self,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError(f"bucket_seconds must be > 0: {bucket_seconds}")
        if bucket_count < 1:
            raise ValueError(f"bucket_count must be >= 1: {bucket_count}")
        self._width = bucket_seconds
        self._clock = clock
        self._lock = threading.Lock()
        # (absolute bucket index, value) pairs, one slot per ring position.
        self._ring: list[list] = [[-1, 0.0] for _ in range(bucket_count)]

    def incr(self, n: float = 1.0) -> None:
        with self._lock:
            index = int(self._clock() // self._width)
            slot = self._ring[index % len(self._ring)]
            if slot[0] != index:
                slot[0] = index
                slot[1] = 0.0
            slot[1] += n

    def total(self, window_s: float) -> float:
        window_s = min(window_s, self._width * len(self._ring))
        with self._lock:
            now = self._clock()
            newest = int(now // self._width)
            oldest = int((now - window_s) // self._width)
            return sum(
                value
                for index, value in self._ring
                if oldest < index <= newest
            )

    def rate(self, window_s: float) -> float:
        """Events per second over the window."""
        window_s = min(window_s, self._width * len(self._ring))
        if window_s <= 0:
            return 0.0
        return self.total(window_s) / window_s


@dataclass(frozen=True)
class SloPolicy:
    """A tenant's latency objective: ``target`` of requests under
    ``latency_ms`` (and not 5xx)."""

    latency_ms: float = 500.0
    target: float = 0.95

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError(f"latency_ms must be > 0: {self.latency_ms}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1): {self.target}")


class _TenantSlo:
    """Good/total rolling counters for one tenant's SLO."""

    __slots__ = ("good", "total")

    def __init__(self, bucket_seconds: float, bucket_count: int, clock) -> None:
        self.good = RollingCounter(bucket_seconds, bucket_count, clock)
        self.total = RollingCounter(bucket_seconds, bucket_count, clock)


class TelemetryHub:
    """Live per-route / per-tenant latency, rate, and SLO state.

    One hub per server. Series are created on first use; the set of routes
    is fixed by the router and tenants are typically few, so cardinality
    stays small. Reads (:meth:`snapshot`) touch only summaries, never the
    raw ring state of another thread's writer beyond each series' lock.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        slo: Optional[SloPolicy] = None,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        bucket_count: int = DEFAULT_BUCKET_COUNT,
    ) -> None:
        self._clock = clock
        self._slo = slo or SloPolicy()
        self._geometry = (bucket_seconds, bucket_count)
        self._lock = threading.Lock()
        self._route_latency: dict[str, RollingHistogram] = {}
        self._tenant_latency: dict[str, RollingHistogram] = {}
        self._tenant_slo: dict[str, _TenantSlo] = {}
        self._counters: dict[str, RollingCounter] = {}
        self._backend_latency: dict[str, RollingHistogram] = {}
        self._backend_outcomes: dict[tuple[str, str], RollingCounter] = {}

    @property
    def slo(self) -> SloPolicy:
        return self._slo

    # -- series management ----------------------------------------------------

    def _histogram(self, table: dict, key: str) -> RollingHistogram:
        with self._lock:
            series = table.get(key)
            if series is None:
                series = table[key] = RollingHistogram(
                    *self._geometry, clock=self._clock
                )
            return series

    def _counter(self, name: str) -> RollingCounter:
        with self._lock:
            series = self._counters.get(name)
            if series is None:
                series = self._counters[name] = RollingCounter(
                    *self._geometry, clock=self._clock
                )
            return series

    def _slo_series(self, tenant: str) -> _TenantSlo:
        with self._lock:
            series = self._tenant_slo.get(tenant)
            if series is None:
                series = self._tenant_slo[tenant] = _TenantSlo(
                    *self._geometry, clock=self._clock
                )
            return series

    # -- recording ------------------------------------------------------------

    def record_request(
        self,
        route: str,
        tenant: Optional[str],
        status: int,
        duration_ms: float,
    ) -> None:
        """One finished request: latency, outcome, and SLO accounting."""
        self._histogram(self._route_latency, route).observe(duration_ms)
        self._counter("requests").incr()
        if status >= 500:
            self._counter("errors").incr()
        if status in (429, 503):
            self._counter("shed").incr()
        if tenant is not None:
            self._histogram(self._tenant_latency, tenant).observe(duration_ms)
            slo = self._slo_series(tenant)
            slo.total.incr()
            if status < 500 and duration_ms <= self._slo.latency_ms:
                slo.good.incr()

    def record_cache(self, hit: bool) -> None:
        self._counter("cache_hit" if hit else "cache_miss").incr()

    def record_semcache(self, outcome: str) -> None:
        """One semantic-cache classification: ``hit``/``miss``/``bypass``."""
        if outcome in ("hit", "miss", "bypass"):
            self._counter(f"semcache_{outcome}").incr()

    def record_backend(
        self, name: str, outcome: str, duration_ms: float
    ) -> None:
        """One routed-backend outcome (the :class:`BackendPool` hook).

        Successful calls carry a real latency; bookkeeping outcomes
        (failover, skipped, hedge) arrive with ``0.0`` and only count.
        """
        with self._lock:
            series = self._backend_outcomes.get((name, outcome))
            if series is None:
                series = self._backend_outcomes[
                    (name, outcome)
                ] = RollingCounter(*self._geometry, clock=self._clock)
        series.incr()
        if outcome == "ok" and duration_ms > 0:
            self._histogram(self._backend_latency, name).observe(duration_ms)

    # -- reads ----------------------------------------------------------------

    def _windowed(self, series: RollingHistogram) -> dict:
        return {
            label: series.summary(seconds).as_dict()
            for label, seconds in WINDOWS.items()
        }

    def _slo_view(self, tenant: str) -> dict:
        series = self._slo_series(tenant)
        policy = self._slo
        view: dict = {
            "objective_ms": policy.latency_ms,
            "target": policy.target,
        }
        budget = 1.0 - policy.target
        for label, seconds in WINDOWS.items():
            total = series.total.total(seconds)
            good = series.good.total(seconds)
            attainment = (good / total) if total else 1.0
            view[label] = {
                "total": int(total),
                "good": int(good),
                "attainment": round(attainment, 6),
                # burn 1.0 = consuming error budget exactly at the rate
                # the target allows; > 1.0 = the SLO is being violated.
                "burn_rate": round((1.0 - attainment) / budget, 4),
            }
        return view

    def snapshot(self) -> dict:
        """The full live view: what ``/statusz`` serves and ``top`` renders."""
        with self._lock:
            routes = sorted(self._route_latency)
            tenants = sorted(
                set(self._tenant_latency) | set(self._tenant_slo)
            )
            counters = sorted(self._counters)
            backends = sorted(
                set(self._backend_latency)
                | {name for name, _ in self._backend_outcomes}
            )
            backend_outcomes = dict(self._backend_outcomes)
        view: dict = {
            "windows": {label: sec for label, sec in WINDOWS.items()},
            "routes": {
                route: self._windowed(
                    self._histogram(self._route_latency, route)
                )
                for route in routes
            },
            "tenants": {
                tenant: {
                    "latency": self._windowed(
                        self._histogram(self._tenant_latency, tenant)
                    ),
                    "slo": self._slo_view(tenant),
                }
                for tenant in tenants
            },
            "counters": {
                name: {
                    label: {
                        "total": self._counter(name).total(seconds),
                        "rate_per_s": round(
                            self._counter(name).rate(seconds), 4
                        ),
                    }
                    for label, seconds in WINDOWS.items()
                }
                for name in counters
            },
        }
        if backends:
            # Only routed serving grows this section; single-model apps
            # keep their snapshot shape (and tests) unchanged.
            view["backends"] = {
                name: {
                    "latency": self._windowed(
                        self._histogram(self._backend_latency, name)
                    ),
                    "outcomes": {
                        outcome: {
                            label: int(series.total(seconds))
                            for label, seconds in WINDOWS.items()
                        }
                        for (series_name, outcome), series in sorted(
                            backend_outcomes.items()
                        )
                        if series_name == name
                    },
                }
                for name in backends
            }
        requests = view["counters"].get("requests")
        hits = view["counters"].get("cache_hit")
        misses = view["counters"].get("cache_miss")
        sem_hits = view["counters"].get("semcache_hit")
        sem_misses = view["counters"].get("semcache_miss")
        sem_bypasses = view["counters"].get("semcache_bypass")
        semcache_seen = bool(sem_hits or sem_misses or sem_bypasses)
        rates: dict = {}
        for label in WINDOWS:
            total = requests[label]["total"] if requests else 0.0
            errors = view["counters"].get("errors")
            shed = view["counters"].get("shed")
            lookups = (hits[label]["total"] if hits else 0.0) + (
                misses[label]["total"] if misses else 0.0
            )
            rates[label] = {
                "error_rate": round(
                    (errors[label]["total"] / total) if errors and total else 0.0, 6
                ),
                "shed_rate": round(
                    (shed[label]["total"] / total) if shed and total else 0.0, 6
                ),
                "cache_hit_rate": round(
                    (hits[label]["total"] / lookups) if hits and lookups else 0.0,
                    6,
                ),
            }
            if semcache_seen:
                # Only semantic-cache-enabled apps grow the rates shape
                # (same contract as the backends section above).
                sem_h = sem_hits[label]["total"] if sem_hits else 0.0
                sem_m = sem_misses[label]["total"] if sem_misses else 0.0
                sem_b = sem_bypasses[label]["total"] if sem_bypasses else 0.0
                answered = sem_h + sem_m
                rounds = answered + sem_b
                rates[label]["semcache_hit_rate"] = round(
                    (sem_h / answered) if answered else 0.0, 6
                )
                rates[label]["semcache_bypass_rate"] = round(
                    (sem_b / rounds) if rounds else 0.0, 6
                )
        view["rates"] = rates
        return view
