"""Correlation-ID propagation: one request id across every layer it touches.

A serve request is handled on one thread but fans out across many
subsystems — session handling, the per-tenant resilience stack, the batch
coalescer, the completion cache, the run journal. Tying those records back
to the request that caused them needs exactly one piece of shared state:
the *current request id*, carried in a :mod:`contextvars` context variable
so it follows the request through nested calls without threading an
argument through every signature.

Usage::

    with request_context(request_id):
        ...  # every obs.span / obs.event / journal append in here is
        ...  # stamped with request_id via current_request_id()

The id is honored from an ``X-Request-Id`` header when the caller sent
one, else minted by :func:`new_request_id`. Batch coalescing is the one
place a *different* thread finishes a request's work (the batch leader
dispatches on behalf of followers); there the id is captured into the
queued item at enqueue time (see
:class:`repro.llm.dispatch.BatchingChatModel`) rather than read from the
leader's context.

Everything here is also safe outside a request: :func:`current_request_id`
returns ``None``, and every consumer treats "no id" as "emit nothing
extra" — which is what keeps batch-run artifacts byte-identical whether or
not this module exists.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

#: The context-local holding the id of the request being served (or None).
_REQUEST_ID: ContextVar[Optional[str]] = ContextVar(
    "fisql_request_id", default=None
)

_counter = itertools.count(1)
_counter_lock = threading.Lock()
_prefix = os.urandom(4).hex()


def new_request_id() -> str:
    """Mint a fresh request id: unique per process, ordered, greppable."""
    with _counter_lock:
        sequence = next(_counter)
    return f"req-{_prefix}-{sequence:06d}"


def deterministic_id_factory(prefix: str = "req") -> Callable[[], str]:
    """A sequential id factory (``req-000001`` ...) for tests and replay."""
    counter = itertools.count(1)
    lock = threading.Lock()

    def make() -> str:
        with lock:
            return f"{prefix}-{next(counter):06d}"

    return make


def current_request_id() -> Optional[str]:
    """The id of the request this code is running on behalf of, or None."""
    return _REQUEST_ID.get()


@contextmanager
def request_context(request_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``request_id`` as the current request for the enclosed block."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)
