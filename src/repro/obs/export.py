"""JSONL export of spans and metrics (the ``--trace PATH`` format).

One JSON object per line. Line types (``"type"`` field):

* ``meta`` — first line: schema version, clock units, span-drop count.
* ``span`` — ``{"id", "parent", "name", "start_ms", "duration_ms",
  "attrs"}``; ``parent`` is ``null`` for roots, times are milliseconds on
  the tracer's monotonic clock (``start_ms`` relative to its epoch).
* ``counter`` — ``{"name", "labels", "value"}``.
* ``histogram`` — ``{"name", "labels", "count", "sum", "min", "max",
  "mean", "p50", "p90", "p95", "p99"}``.

The format is append-friendly and greppable; ``jq -s 'group_by(.type)'``
or :func:`read_trace_jsonl` reconstruct the run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Bump when a line schema changes shape.
TRACE_SCHEMA_VERSION = 1


def trace_lines(tracer: Tracer, metrics: MetricsRegistry) -> list[dict]:
    """The full export as a list of line objects (meta first)."""
    lines: list[dict] = [
        {
            "type": "meta",
            "version": TRACE_SCHEMA_VERSION,
            "clock": "monotonic_ms",
            "dropped_spans": tracer.dropped,
        }
    ]
    for record in sorted(tracer.records(), key=lambda r: (r.start_ms, r.span_id)):
        lines.append(
            {
                "type": "span",
                "id": record.span_id,
                "parent": record.parent_id,
                "name": record.name,
                "start_ms": round(record.start_ms, 6),
                "duration_ms": round(record.duration_ms, 6),
                "attrs": record.attributes,
            }
        )
    snapshot = metrics.snapshot()
    for counter in snapshot["counters"]:
        lines.append({"type": "counter", **counter})
    for histogram in snapshot["histograms"]:
        lines.append({"type": "histogram", **histogram})
    return lines


def write_trace_jsonl(
    path: Union[str, Path], tracer: Tracer, metrics: MetricsRegistry
) -> int:
    """Write the JSONL export to ``path``; returns the line count."""
    lines = trace_lines(tracer, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, default=str) + "\n")
    return len(lines)


def read_trace_jsonl(path: Union[str, Path]) -> list[dict]:
    """Parse a JSONL trace back into line objects (validates every line)."""
    lines: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line: {exc}"
                ) from exc
            if "type" not in parsed:
                raise ValueError(
                    f"{path}:{line_number}: trace line missing 'type'"
                )
            lines.append(parsed)
    return lines
