"""Re-render a saved JSONL trace without re-running the experiment.

``fisql-repro trace-summary PATH`` feeds a ``--trace`` export (see
:mod:`repro.obs.export`) through :func:`summarize_trace`:

* **Flame rollup** — spans aggregated by their *path* (the chain of span
  names from the root), rendered as an indented tree with per-path call
  counts, total/mean milliseconds, share of the root's wall-clock, and a
  proportional bar. This is the flame-graph reading of where time went.
* **Correction-round drill-down** — every ``correction.round`` span
  grouped by its round index: how many sessions reached the round, the
  mean round latency, and the per-child-span time breakdown inside it.
* The counter and histogram lines of the trace, tabulated.

Everything is computed from the file alone; no experiment state needed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.obs.export import read_trace_jsonl

#: Width of the proportional share bar in the flame rollup.
_BAR_WIDTH = 24


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: list[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    rule = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(headers), rule] + [fmt(row) for row in rows])


def _ms(value: float) -> str:
    return f"{value:.2f}"


class _PathNode:
    """Aggregate of every span that shares one name-path from the root."""

    __slots__ = ("name", "count", "total_ms", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_ms = 0.0
        self.children: dict[str, _PathNode] = {}

    def child(self, name: str) -> "_PathNode":
        if name not in self.children:
            self.children[name] = _PathNode(name)
        return self.children[name]


def _build_path_tree(spans: list[dict]) -> _PathNode:
    """Fold the span forest into a path-aggregated tree."""
    by_id = {span["id"]: span for span in spans}
    children: dict[Optional[int], list[dict]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in by_id:
            parent = None  # orphaned by the span cap; treat as a root
        children.setdefault(parent, []).append(span)
    for group in children.values():
        group.sort(key=lambda span: (span["start_ms"], span["id"]))

    root = _PathNode("")

    def visit(span: dict, node: _PathNode) -> None:
        here = node.child(span["name"])
        here.count += 1
        here.total_ms += span["duration_ms"]
        for child in children.get(span["id"], []):
            visit(child, here)

    for span in children.get(None, []):
        visit(span, root)
    return root


def _render_flame(
    root: _PathNode, max_depth: Optional[int] = None
) -> str:
    base = sum(child.total_ms for child in root.children.values())
    if not root.children:
        return "(no spans in trace)"
    lines = [
        f"{'span path':<44} {'count':>6} {'total ms':>10} "
        f"{'mean ms':>9} {'share':>6}"
    ]

    def visit(node: _PathNode, depth: int) -> None:
        if max_depth is not None and depth >= max_depth:
            return
        ordered = sorted(
            node.children.values(),
            key=lambda child: (-child.total_ms, child.name),
        )
        for child in ordered:
            share = (child.total_ms / base) if base > 0 else 0.0
            bar = "#" * max(
                1 if child.total_ms > 0 else 0,
                round(share * _BAR_WIDTH),
            )
            label = ("  " * depth) + child.name
            lines.append(
                f"{label:<44} {child.count:>6} {_ms(child.total_ms):>10} "
                f"{_ms(child.total_ms / child.count):>9} "
                f"{100.0 * share:>5.1f}% {bar}"
            )
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def _render_rounds(spans: list[dict]) -> str:
    """Per-round drill-down over ``correction.round`` spans."""
    rounds = [s for s in spans if s["name"] == "correction.round"]
    if not rounds:
        return "(no correction.round spans in trace)"
    children: dict[int, list[dict]] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(span)

    by_round: dict[object, list[dict]] = {}
    for span in rounds:
        key = span.get("attrs", {}).get("round", "?")
        by_round.setdefault(key, []).append(span)

    blocks = []
    for key in sorted(by_round, key=str):
        group = by_round[key]
        total = sum(s["duration_ms"] for s in group)
        corrected = sum(
            1 for s in group if s.get("attrs", {}).get("corrected") is True
        )
        blocks.append(
            f"round {key}: {len(group)} sessions, total {_ms(total)} ms, "
            f"mean {_ms(total / len(group))} ms"
            + (f", {corrected} corrected" if corrected else "")
        )
        inner: dict[str, list[float]] = {}
        for span in group:
            for child in children.get(span["id"], []):
                inner.setdefault(child["name"], []).append(
                    child["duration_ms"]
                )
        for name in sorted(inner, key=lambda n: -sum(inner[n])):
            durations = inner[name]
            blocks.append(
                f"  {name:<30} x{len(durations):<5} "
                f"total {_ms(sum(durations)):>9} ms  "
                f"mean {_ms(sum(durations) / len(durations)):>8} ms"
            )
    return "\n".join(blocks)


def _render_counters(counters: list[dict]) -> str:
    if not counters:
        return "(no counters in trace)"
    rows = []
    for entry in sorted(
        counters,
        key=lambda e: (e["name"], sorted(e.get("labels", {}).items())),
    ):
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(entry.get("labels", {}).items())
        )
        rows.append([entry["name"], labels, str(int(entry["value"]))])
    return _table(["counter", "labels", "value"], rows)


def _render_histograms(histograms: list[dict]) -> str:
    if not histograms:
        return "(no histograms in trace)"
    rows = []
    for entry in sorted(
        histograms,
        key=lambda e: (e["name"], sorted(e.get("labels", {}).items())),
    ):
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(entry.get("labels", {}).items())
        )
        rows.append(
            [
                entry["name"],
                labels,
                str(int(entry["count"])),
                _ms(entry["mean"]),
                _ms(entry["p50"]),
                _ms(entry["p95"]),
                _ms(entry["max"]),
            ]
        )
    return _table(
        ["histogram", "labels", "count", "mean", "p50", "p95", "max"], rows
    )


def summarize_trace(
    lines: list[dict], max_depth: Optional[int] = None
) -> str:
    """Render trace lines (from :func:`read_trace_jsonl`) as the summary."""
    meta = next((l for l in lines if l.get("type") == "meta"), {})
    spans = [l for l in lines if l.get("type") == "span"]
    counters = [l for l in lines if l.get("type") == "counter"]
    histograms = [l for l in lines if l.get("type") == "histogram"]

    header = (
        f"Trace summary (schema v{meta.get('version', '?')}) — "
        f"{len(spans)} spans ({meta.get('dropped_spans', 0)} dropped), "
        f"{len(counters)} counters, {len(histograms)} histograms"
    )
    sections = [
        header,
        "-- Flame rollup (time by span path) "
        + "-" * 24,
        _render_flame(_build_path_tree(spans), max_depth=max_depth),
        "-- Correction rounds drill-down " + "-" * 28,
        _render_rounds(spans),
        "-- Counters " + "-" * 48,
        _render_counters(counters),
        "-- Histograms " + "-" * 46,
        _render_histograms(histograms),
    ]
    return "\n\n".join(sections)


def summarize_trace_file(
    path: Union[str, Path], max_depth: Optional[int] = None
) -> str:
    """Read a ``--trace`` JSONL file and render its summary."""
    return summarize_trace(read_trace_jsonl(path), max_depth=max_depth)
