"""Counters and histograms for pipeline metrics.

A :class:`MetricsRegistry` holds named counters and histograms, each keyed
by an optional label set (``count("llm.calls", kind="nl2sql")``).
Histograms retain raw observations so summaries can report exact
percentiles; :func:`percentile` uses linear interpolation between order
statistics, which keeps the math deterministic and testable.

Like the tracer, the registry takes an injectable clock so ``timer()``
durations are deterministic under test, and every mutating path is guarded
by one lock for thread safety.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Optional, Sequence

#: Percentiles included in every histogram summary.
SUMMARY_PERCENTILES = (50, 90, 95, 99)

LabelKey = tuple[tuple[str, object], ...]


def percentile(
    values: Sequence[float], q: float, default: Optional[float] = None
) -> Optional[float]:
    """The q-th percentile (0..100) with linear interpolation.

    An empty input returns ``default`` — ``None`` unless overridden (pass
    ``default=0.0`` for report-style zero-fill) — so callers don't need an
    emptiness guard. An out-of-range ``q`` still raises: that is a caller
    bug, not a data condition.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if not values:
        return default
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    position = (q / 100.0) * (len(data) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return data[lower]
    fraction = position - lower
    return data[lower] + (data[upper] - data[lower]) * fraction


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted(labels.items()))


class _Timer:
    """Context manager that observes its elapsed milliseconds on exit."""

    __slots__ = ("_registry", "_name", "_labels", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: dict) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._registry._clock()
        return self

    def __exit__(self, *_exc) -> bool:
        elapsed_ms = (self._registry._clock() - self._start) * 1000.0
        self._registry.observe(self._name, elapsed_ms, **self._labels)
        return False


class _NoopTimer:
    """Shared do-nothing timer used when metrics are disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


#: The singleton no-op timer.
NOOP_TIMER = _NoopTimer()


class MetricsRegistry:
    """Thread-safe registry of labelled counters and histograms."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], float] = {}
        self._histograms: dict[tuple[str, LabelKey], list[float]] = {}

    # -- recording ------------------------------------------------------------

    def count(self, name: str, n: float = 1, **labels: object) -> None:
        """Increment counter ``name`` (for the given label set) by ``n``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into histogram ``name``."""
        key = (name, _label_key(labels))
        with self._lock:
            self._histograms.setdefault(key, []).append(float(value))

    def timer(self, name: str, **labels: object) -> _Timer:
        """A context manager recording elapsed ms into histogram ``name``."""
        return _Timer(self, name, labels)

    # -- reads ----------------------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        """The counter's current value (0 when never incremented)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of counter ``name`` across all label sets."""
        with self._lock:
            return sum(
                value
                for (counter_name, _labels), value in self._counters.items()
                if counter_name == name
            )

    def counter_by_label(self, name: str, label: str) -> dict:
        """Counter values grouped by one label's value."""
        grouped: dict = {}
        with self._lock:
            items = list(self._counters.items())
        for (counter_name, labels), value in items:
            if counter_name != name:
                continue
            label_value = dict(labels).get(label)
            grouped[label_value] = grouped.get(label_value, 0) + value
        return grouped

    def histogram_values(self, name: str, **labels: object) -> list[float]:
        """Raw observations for one (name, labels) histogram."""
        with self._lock:
            return list(self._histograms.get((name, _label_key(labels)), []))

    # -- merging -------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one.

        Counters add; histogram observation lists concatenate. Used to
        combine per-worker registries into one report — merge order does
        not affect :meth:`snapshot` output because snapshots are sorted.
        """
        with other._lock:
            counters = dict(other._counters)
            histograms = {
                key: list(values) for key, values in other._histograms.items()
            }
        with self._lock:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, values in histograms.items():
                self._histograms.setdefault(key, []).extend(values)

    # -- cross-process transfer ----------------------------------------------------

    def to_raw(self) -> dict:
        """A picklable plain-data dump of every series.

        The registry itself holds a lock (unpicklable), so process-pool
        workers ship this instead; the parent rebuilds with
        :meth:`from_raw` and folds it in via :meth:`merge`.
        """
        with self._lock:
            return {
                "counters": [
                    [name, [list(pair) for pair in labels], value]
                    for (name, labels), value in self._counters.items()
                ],
                "histograms": [
                    [name, [list(pair) for pair in labels], list(values)]
                    for (name, labels), values in self._histograms.items()
                ],
            }

    @classmethod
    def from_raw(cls, raw: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_raw` dump."""
        registry = cls()
        for name, labels, value in raw.get("counters", []):
            key = (name, tuple((label, val) for label, val in labels))
            registry._counters[key] = value
        for name, labels, values in raw.get("histograms", []):
            key = (name, tuple((label, val) for label, val in labels))
            registry._histograms[key] = [float(v) for v in values]
        return registry

    # -- snapshot ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """All counters and histogram summaries, sorted by (name, labels).

        Sorted rendering (rather than insertion order) is what keeps
        ``--metrics`` reports byte-identical under concurrency: with
        worker threads, which series gets created first is scheduler
        dependent, but the sorted view is not.
        """
        with self._lock:
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(
                    self._counters.items(), key=_series_sort_key
                )
            ]
            histograms = [
                summarize_histogram(name, dict(labels), values)
                for (name, labels), values in sorted(
                    self._histograms.items(), key=_series_sort_key
                )
            ]
        return {"counters": counters, "histograms": histograms}


def _series_sort_key(item: tuple) -> tuple:
    (name, labels), _value = item
    return (name, tuple((key, str(value)) for key, value in labels))


def summarize_histogram(
    name: str, labels: dict, values: Sequence[float]
) -> dict:
    """Count / sum / min / max / mean / percentile summary of one histogram."""
    total = sum(values)
    summary = {
        "name": name,
        "labels": labels,
        "count": len(values),
        "sum": total,
        "min": min(values) if values else 0.0,
        "max": max(values) if values else 0.0,
        "mean": total / len(values) if values else 0.0,
    }
    for q in SUMMARY_PERCENTILES:
        summary[f"p{q}"] = percentile(values, q, default=0.0)
    return summary


def find_histogram(
    histograms: Sequence[dict], name: str, labels: Optional[dict] = None
) -> Optional[dict]:
    """Locate a histogram summary by name (and, optionally, exact labels)."""
    for entry in histograms:
        if entry["name"] != name:
            continue
        if labels is None or entry["labels"] == labels:
            return entry
    return None
