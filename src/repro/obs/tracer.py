"""Nested span tracing for the FISQL stack.

A :class:`Tracer` records *spans*: named, timed regions of execution with
attributes and parent links. Spans are context managers and nest through a
thread-local stack, so concurrent threads build independent span trees over
one shared (locked) record buffer.

Timing uses an injectable monotonic clock (``time.perf_counter`` by
default); tests pass a fake clock for deterministic durations. Span starts
are stored as millisecond offsets from the tracer's epoch, so a trace is
reproducible across runs modulo real wall-clock.

When observability is disabled, call sites receive the shared
:data:`NOOP_SPAN` — entering, exiting and ``set()`` all cost a no-op method
call and allocate nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

#: Default cap on retained span records; beyond it spans are counted as
#: dropped instead of stored, bounding memory on paper-scale runs.
DEFAULT_MAX_SPANS = 200_000


@dataclass
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ms: float
    duration_ms: float
    attributes: dict


class _NoopSpan:
    """Shared do-nothing span used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, _key: str, _value: object) -> "_NoopSpan":
        return self


#: The singleton no-op span.
NOOP_SPAN = _NoopSpan()


class ActiveSpan:
    """A live span; use as a context manager."""

    __slots__ = ("_tracer", "name", "attributes", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, key: str, value: object) -> "ActiveSpan":
        """Attach (or overwrite) an attribute on the live span."""
        self.attributes[key] = value
        return self

    def __enter__(self) -> "ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = tracer._allocate_id()
        stack.append(self)
        self._start = tracer._clock()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exited out of order; drop up to and incl. self
            del stack[stack.index(self) :]
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        tracer._record(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_ms=(self._start - tracer._epoch) * 1000.0,
                duration_ms=(end - self._start) * 1000.0,
                attributes=dict(self.attributes),
            )
        )
        return False


class Tracer:
    """Thread-safe span recorder with nesting via a thread-local stack."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._dropped = 0
        self._next_id = 0
        self._local = threading.local()

    # -- span lifecycle -------------------------------------------------------

    def span(self, name: str, **attributes: object) -> ActiveSpan:
        """Open a span; use ``with tracer.span("name", key=value): ...``."""
        return ActiveSpan(self, name, attributes)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) >= self._max_spans:
                self._dropped += 1
            else:
                self._records.append(record)

    # -- inspection ---------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Spans discarded after the ``max_spans`` cap was reached."""
        with self._lock:
            return self._dropped

    def records(self) -> list[SpanRecord]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    def aggregate(self) -> list[dict]:
        """Per-name rollup: count / total / mean / max duration (ms)."""
        buckets: dict[str, list[float]] = {}
        for record in self.records():
            buckets.setdefault(record.name, []).append(record.duration_ms)
        rollup = []
        for name, durations in buckets.items():
            total = sum(durations)
            rollup.append(
                {
                    "name": name,
                    "count": len(durations),
                    "total_ms": total,
                    "mean_ms": total / len(durations),
                    "max_ms": max(durations),
                }
            )
        rollup.sort(key=lambda row: (-row["total_ms"], row["name"]))
        return rollup
