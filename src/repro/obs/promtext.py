"""Prometheus text exposition (format 0.0.4) for ``GET /metrics``.

Machine-readable replacement for the prose run report the endpoint used
to serve. Three sources fold into one page:

* the live :class:`~repro.obs.metrics.MetricsRegistry` — counters become
  ``fisql_<name>_total`` counter families, histogram summaries become
  summary families (``{quantile="0.5"}`` series plus ``_sum``/``_count``);
* the :class:`~repro.obs.telemetry.TelemetryHub` snapshot — windowed
  per-route and per-tenant latency quantiles as gauges
  (``fisql_serve_route_latency_ms`` / ``fisql_serve_tenant_latency_ms``,
  labelled ``{window="1m", quantile="0.95"}``) and per-tenant SLO
  attainment/burn gauges;
* a constant ``fisql_serve_up`` gauge, so a scrape is non-empty — and
  still *valid* exposition — even when observability is disabled.

Metric and label names are sanitized to the exposition charset; label
values are escaped per the spec (backslash, quote, newline). Series
within a family keep the registry's sorted order, so consecutive scrapes
of an idle server are byte-identical.
"""

from __future__ import annotations

import re
from typing import Optional

#: The content type scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantiles exported for registry histogram summaries.
_SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_OK = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str) -> str:
    """A valid metric name: invalid chars become underscores."""
    name = _NAME_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label(name: str) -> str:
    name = _LABEL_OK.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def escape_value(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_label(str(key))}="{escape_value(value)}"'
        for key, value in sorted(labels.items(), key=lambda kv: str(kv[0]))
    )
    return "{" + inner + "}"


def _number(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Family:
    """One metric family: TYPE/HELP header plus its sample lines."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: list[str] = []

    def add(self, labels: dict, value: float, suffix: str = "") -> None:
        self.samples.append(
            f"{self.name}{suffix}{_labels_text(labels)} {_number(value)}"
        )

    def render(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
            *self.samples,
        ]


def render_prometheus(
    snapshot: Optional[dict],
    telemetry: Optional[dict] = None,
    up: bool = True,
    backends: Optional[dict] = None,
    loop: Optional[dict] = None,
) -> str:
    """The full ``/metrics`` page.

    ``snapshot`` is an ``obs.snapshot()`` dict (or None when observability
    is disabled); ``telemetry`` is a ``TelemetryHub.snapshot()`` dict (or
    None when the server has no hub); ``backends`` is a
    ``BackendPool.health_snapshot()`` dict (or None for single-model
    serving); ``loop`` is the async transport's loop-health snapshot (or
    None under the threaded transport). Any source may be absent — the
    page is valid exposition regardless.
    """
    families: dict[str, _Family] = {}

    def family(name: str, kind: str, help_text: str) -> _Family:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(name, kind, help_text)
        return entry

    up_family = family(
        "fisql_serve_up", "gauge", "1 when the serve process is live."
    )
    up_family.add({}, 1.0 if up else 0.0)

    if snapshot is not None and snapshot.get("enabled"):
        for counter in snapshot.get("counters", []):
            name = f"fisql_{sanitize_name(counter['name'])}_total"
            family(
                name, "counter", f"repro.obs counter {counter['name']}."
            ).add(counter.get("labels", {}), counter["value"])
        for histogram in snapshot.get("histograms", []):
            name = f"fisql_{sanitize_name(histogram['name'])}"
            entry = family(
                name, "summary", f"repro.obs histogram {histogram['name']}."
            )
            labels = histogram.get("labels", {})
            for quantile, field in _SUMMARY_QUANTILES:
                entry.add(
                    {**labels, "quantile": quantile},
                    histogram.get(field, 0.0),
                )
            entry.add(labels, histogram.get("sum", 0.0), suffix="_sum")
            entry.add(labels, histogram.get("count", 0), suffix="_count")

    if telemetry is not None:
        _telemetry_families(telemetry, family)

    if backends is not None:
        _backend_families(backends, family)

    if loop is not None:
        _loop_families(loop, family)

    blocks: list[str] = []
    for name in sorted(families):
        blocks.extend(families[name].render())
    return "\n".join(blocks) + "\n"


def _telemetry_families(telemetry: dict, family) -> None:
    latency_fields = (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms"))

    def latency_gauges(name: str, scope_label: str, table: dict, help_text: str):
        entry = family(name, "gauge", help_text)
        count_entry = family(
            f"{name.rsplit('_', 1)[0]}_requests",
            "gauge",
            f"Windowed request count behind {name}.",
        )
        for key in sorted(table):
            windows = table[key]
            for window in sorted(windows):
                summary = windows[window]
                for quantile, field in latency_fields:
                    entry.add(
                        {
                            scope_label: key,
                            "window": window,
                            "quantile": quantile,
                        },
                        summary.get(field, 0.0),
                    )
                count_entry.add(
                    {scope_label: key, "window": window},
                    summary.get("count", 0),
                )

    latency_gauges(
        "fisql_serve_route_latency_ms",
        "route",
        telemetry.get("routes", {}),
        "Windowed serve latency quantiles per route (milliseconds).",
    )
    latency_gauges(
        "fisql_serve_tenant_latency_ms",
        "tenant",
        {
            tenant: view.get("latency", {})
            for tenant, view in telemetry.get("tenants", {}).items()
        },
        "Windowed serve latency quantiles per tenant (milliseconds).",
    )

    attainment = family(
        "fisql_serve_slo_attainment",
        "gauge",
        "Fraction of tenant requests meeting the latency objective.",
    )
    burn = family(
        "fisql_serve_slo_burn_rate",
        "gauge",
        "Error-budget burn rate (1.0 = budget consumed exactly at target).",
    )
    for tenant in sorted(telemetry.get("tenants", {})):
        slo = telemetry["tenants"][tenant].get("slo", {})
        for window in sorted(telemetry.get("windows", {})):
            view = slo.get(window)
            if not isinstance(view, dict):
                continue
            labels = {"tenant": tenant, "window": window}
            attainment.add(labels, view.get("attainment", 1.0))
            burn.add(labels, view.get("burn_rate", 0.0))

    backend_views = telemetry.get("backends", {})
    if backend_views:
        latency_gauges(
            "fisql_llm_backend_latency_ms",
            "backend",
            {
                name: view.get("latency", {})
                for name, view in backend_views.items()
            },
            "Windowed routed-call latency quantiles per backend "
            "(milliseconds).",
        )
        outcome_entry = family(
            "fisql_llm_backend_outcomes_windowed",
            "gauge",
            "Windowed routed-call outcomes per backend "
            "(ok/error/failover/skipped/rejected/hedge/hedge_win).",
        )
        for name in sorted(backend_views):
            outcomes = backend_views[name].get("outcomes", {})
            for outcome in sorted(outcomes):
                for window in sorted(outcomes[outcome]):
                    outcome_entry.add(
                        {
                            "backend": name,
                            "outcome": outcome,
                            "window": window,
                        },
                        outcomes[outcome][window],
                    )

    for name, help_text in (
        ("requests", "Windowed request count."),
        ("errors", "Windowed 5xx count."),
        ("shed", "Windowed shed (429/503) count."),
        ("cache_hit", "Windowed completion-cache hits."),
        ("cache_miss", "Windowed completion-cache misses."),
        ("semcache_hit", "Windowed semantic-cache hits."),
        ("semcache_miss", "Windowed semantic-cache misses."),
        ("semcache_bypass", "Windowed semantic-cache bypasses."),
    ):
        table = telemetry.get("counters", {}).get(name)
        if not table:
            continue
        entry = family(
            f"fisql_serve_{name}_windowed",
            "gauge",
            help_text,
        )
        for window in sorted(table):
            entry.add({"window": window}, table[window].get("total", 0.0))


def _loop_families(loop: dict, family) -> None:
    """Event-loop health gauges from the async transport's snapshot."""
    lag = family(
        "fisql_serve_loop_lag_ms",
        "gauge",
        "Event-loop scheduling lag measured by sleep overshoot "
        "(milliseconds).",
    )
    lag.add({"stat": "last"}, loop.get("loop_lag_ms", 0.0))
    lag.add({"stat": "max"}, loop.get("loop_lag_max_ms", 0.0))
    queue = family(
        "fisql_serve_executor_queue",
        "gauge",
        "Requests queued behind the async transport's request executor.",
    )
    queue.add({}, loop.get("executor_queue", 0))
    inflight = family(
        "fisql_serve_executor_inflight",
        "gauge",
        "Requests currently running on the async transport's executor.",
    )
    inflight.add({}, loop.get("executor_inflight", 0))


#: Breaker states exported as a one-hot gauge per backend.
_BREAKER_STATES = ("closed", "open", "half_open")


def _backend_families(backends: dict, family) -> None:
    """Per-backend health and breaker-state gauges from a
    ``BackendPool.health_snapshot()``."""
    healthy = family(
        "fisql_llm_backend_healthy",
        "gauge",
        "1 while the backend is in rotation, 0 while ejected.",
    )
    failures = family(
        "fisql_llm_backend_consecutive_failures",
        "gauge",
        "Consecutive live-call/probe failures feeding ejection.",
    )
    ejections = family(
        "fisql_llm_backend_ejections_total",
        "counter",
        "Times the backend was ejected from rotation.",
    )
    readmissions = family(
        "fisql_llm_backend_readmissions_total",
        "counter",
        "Times an ejected backend was probed healthy and readmitted.",
    )
    breaker = family(
        "fisql_llm_backend_breaker_state",
        "gauge",
        "One-hot circuit-breaker state per backend.",
    )
    for name in sorted(backends):
        view = backends[name]
        labels = {"backend": name}
        healthy.add(labels, 1.0 if view.get("healthy") else 0.0)
        failures.add(labels, view.get("consecutive_failures", 0))
        ejections.add(labels, view.get("ejections", 0))
        readmissions.add(labels, view.get("readmissions", 0))
        state = view.get("breaker")
        if state is not None:
            for candidate in _BREAKER_STATES:
                breaker.add(
                    {**labels, "state": candidate},
                    1.0 if state == candidate else 0.0,
                )
