"""Deterministic hostile-environment chaos: disk and transport faults.

PR 2 made the *model* tier chaos-testable: seeded LLM fault injection,
retry/breaker stacks, degraded rounds — with the guarantee that a chaos
run is deterministic and a no-flag run is byte-identical. This package
extends that guarantee down to the environment:

* :mod:`repro.chaos.diskfaults` — seeded fault injection for the disk
  plane (``ENOSPC``/``EIO``/``EROFS``/torn ``os.replace``) at named
  crash-point-style sites inside :mod:`repro.durability.atomic`, the run
  journal, the completion cache, the semantic cache, and the session
  store. The stores respond by flipping into a *degraded read-only*
  mode (``durability.degraded`` counters + a run-report line) instead of
  crashing the sweep.
* :mod:`repro.chaos.transport` — hostile HTTP clients (slow-loris
  header trickles, torn request bodies, oversized posts) used by the
  transport-hardening tests and the scenario runner.
* :mod:`repro.chaos.scenarios` — named end-to-end scenario schedules
  behind ``fisql-repro chaos --scenario NAME``, each asserting its
  invariants (degraded-mode completion + byte-identical ``--resume``,
  drain under slow-loris flood, exactly-once retried turns).

Layering: :mod:`diskfaults` imports nothing above :mod:`repro.obs`, so
the durability layer can call its hook without an import cycle.
"""

from repro.chaos.diskfaults import (
    DISK_FAULT_ENV,
    DiskFaultProfile,
    arm_disk_fault,
    arm_disk_profile,
    disarm_disk_faults,
    disk_fault,
    disk_fault_stats,
)

__all__ = [
    "DISK_FAULT_ENV",
    "DiskFaultProfile",
    "arm_disk_fault",
    "arm_disk_profile",
    "disarm_disk_faults",
    "disk_fault",
    "disk_fault_stats",
]
