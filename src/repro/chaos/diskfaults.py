"""Seeded disk-fault injection: deterministic I/O failure at named sites.

The disk analogue of :mod:`repro.durability.crashpoints`. Instrumented
code calls ``disk_fault("disk.journal_append")`` just before it touches
the disk; by default that is a no-op costing one dict lookup. Armed, the
hook raises a *real* :class:`OSError` (``ENOSPC``, ``EIO``, ``EROFS``) —
so the exact ``except OSError`` recovery paths production would exercise
are the ones the test exercises — or tears an ``os.replace`` by leaving
truncated bytes in the target before failing, simulating a filesystem
whose rename is not atomic.

Two arming styles, mirroring crash points:

* **Deterministic hit counts** — ``arm_disk_fault("disk.journal_append",
  on_hit=5, error="enospc", sticky=True)`` fails the 5th journal write
  and, because a full disk stays full, every write after it.
* **Seeded probability** — ``arm_disk_profile(DiskFaultProfile(
  rate=0.05, seed=7))`` fails ~5% of instrumented writes, with the same
  writes failing on every run with the same seed (the
  :class:`~repro.resilience.FaultProfile` construction, aimed at disk).

Subprocess scenarios arm via the environment::

    FISQL_DISK_FAULT=disk.journal_append:5:enospc:sticky fisql-repro ...

Sites instrumented today (grep for ``disk_fault(`` to confirm):

========================  =====================================================
``disk.atomic_write``     every atomic temp-file write (journal seals, caches,
                          suites, session files)
``disk.replace``          the ``os.replace`` publish step (supports ``torn``)
``disk.journal_append``   the fsync'd write-ahead journal line
``disk.session_save``     session-store persistence on eviction
``disk.cache_save``       completion-cache persistence
``disk.semcache_save``    semantic-cache persistence
``disk.semcache_log``     the semcache question-log append
========================  =====================================================
"""

from __future__ import annotations

import errno as _errno
import os
import random
import threading
from dataclasses import dataclass
from typing import Optional

#: ``site:N[:error[:sticky]]`` — fail the Nth hit of ``site`` (and, with
#: ``sticky``, every later one).
DISK_FAULT_ENV = "FISQL_DISK_FAULT"

#: error name -> errno for injected OSErrors. ``torn`` is special-cased:
#: it tears the replace target before raising EIO.
_ERRNOS = {
    "enospc": _errno.ENOSPC,
    "eio": _errno.EIO,
    "erofs": _errno.EROFS,
    "emfile": _errno.EMFILE,
    "torn": _errno.EIO,
}


@dataclass(frozen=True)
class DiskFaultProfile:
    """A seeded probabilistic disk-fault plan.

    ``rate`` of instrumented disk touches fail with ``error``; the draw
    sequence is owned by one seeded RNG, so a given seed fails the same
    writes in the same order on every run.
    """

    rate: float = 0.0
    error: str = "eio"
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1]: {self.rate}")
        if self.error not in _ERRNOS:
            raise ValueError(
                f"unknown disk fault error {self.error!r} "
                f"(known: {', '.join(sorted(_ERRNOS))})"
            )


class _FaultState:
    __slots__ = ("lock", "hits", "armed", "profile", "rng", "injected")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.hits: dict[str, int] = {}
        # site -> (on_hit, error, sticky); programmatic arms shadow the env.
        self.armed: dict[str, tuple[int, str, bool]] = {}
        self.profile: Optional[DiskFaultProfile] = None
        self.rng: Optional[random.Random] = None
        self.injected = 0


_STATE = _FaultState()


def arm_disk_fault(
    site: str, on_hit: int = 1, error: str = "enospc", sticky: bool = False
) -> None:
    """Arm one site: fail on hit ``on_hit`` (and after, when ``sticky``)."""
    if on_hit < 1:
        raise ValueError(f"on_hit must be >= 1: {on_hit}")
    if error not in _ERRNOS:
        raise ValueError(
            f"unknown disk fault error {error!r} "
            f"(known: {', '.join(sorted(_ERRNOS))})"
        )
    with _STATE.lock:
        _STATE.armed[site] = (on_hit, error, sticky)
        _STATE.hits[site] = 0


def arm_disk_profile(profile: DiskFaultProfile) -> None:
    """Arm the seeded probabilistic profile across every site."""
    with _STATE.lock:
        _STATE.profile = profile
        _STATE.rng = random.Random(profile.seed)


def disarm_disk_faults() -> None:
    """Disarm everything and reset hit counters (test teardown)."""
    with _STATE.lock:
        _STATE.armed.clear()
        _STATE.hits.clear()
        _STATE.profile = None
        _STATE.rng = None
        _STATE.injected = 0


def disk_fault_stats() -> dict:
    """Hit counters and injected-fault count (scenario assertions)."""
    with _STATE.lock:
        return {"hits": dict(_STATE.hits), "injected": _STATE.injected}


def _env_armed(site: str) -> Optional[tuple[int, str, bool]]:
    spec = os.environ.get(DISK_FAULT_ENV, "")
    if not spec:
        return None
    parts = spec.split(":")
    if not parts or parts[0] != site:
        return None
    try:
        on_hit = int(parts[1]) if len(parts) > 1 and parts[1] else 1
    except ValueError:
        return None
    error = parts[2] if len(parts) > 2 and parts[2] else "enospc"
    if error not in _ERRNOS:
        return None
    sticky = len(parts) > 3 and parts[3] == "sticky"
    return on_hit, error, sticky


def _raise(error: str, site: str) -> None:
    code = _ERRNOS[error]
    raise OSError(code, f"{os.strerror(code)} (injected at {site})")


def _tear_replace(tmp_path: object, target: object) -> None:
    """Leave a torn half-write in the target, as a broken rename would."""
    try:
        with open(tmp_path, "rb") as handle:  # type: ignore[arg-type]
            payload = handle.read()
        with open(target, "wb") as handle:  # type: ignore[arg-type]
            handle.write(payload[: max(1, len(payload) // 2)])
    except OSError:
        pass  # the tear is best-effort; the EIO below is the contract


def disk_fault(
    site: str, tmp_path: object = None, target: object = None
) -> None:
    """Maybe fail this disk touch, per the armed configuration.

    No-op when nothing is armed. ``tmp_path``/``target`` are only
    consulted by the ``torn`` error at replace sites.
    """
    with _STATE.lock:
        armed = _STATE.armed.get(site) or _env_armed(site)
        profile = _STATE.profile
        if armed is None and profile is None:
            return
        error: Optional[str] = None
        if armed is not None:
            hits = _STATE.hits.get(site, 0) + 1
            _STATE.hits[site] = hits
            on_hit, armed_error, sticky = armed
            if hits == on_hit or (sticky and hits > on_hit):
                error = armed_error
        if error is None and profile is not None and profile.rate > 0:
            assert _STATE.rng is not None
            if _STATE.rng.random() < profile.rate:
                error = profile.error
        if error is None:
            return
        _STATE.injected += 1
    # Raise outside the lock: OSError handlers may touch the disk again.
    if error == "torn" and tmp_path is not None and target is not None:
        _tear_replace(tmp_path, target)
    _raise(error, site)
