"""Named chaos scenarios: hostile-environment drills with invariants.

Each scenario assembles a real slice of the stack — serve app, journal,
session store, both HTTP transports — turns a specific kind of hostility
loose on it (a full disk, a slow-loris flood, a kill-9 retry storm), and
then *checks invariants* rather than eyeballing logs:

* ``disk-full-mid-sweep`` — ENOSPC strikes the journal mid-sweep. The
  sweep must complete in degraded mode, the served bytes must be
  identical to a fault-free run, the surviving journal must reload
  cleanly with zero quarantined files, and a fault-free resume over the
  clean journal must be byte-identical with zero re-appends.
* ``slow-loris-drain`` — trickled heads, torn bodies, and terabyte
  Content-Lengths against both transports while real traffic flows.
  Attackers must be cut off or refused, real requests must keep
  answering, and ``/readyz`` must never lie: ready exactly while
  serving, not-ready the moment drain begins.
* ``retry-storm`` — every turn's response is eaten after the turn is
  applied (the client-visible shape of ``kill -9``), and the client
  retries with ``Idempotency-Key``. The transcript and journal must be
  byte-for-byte what a calm run produces: zero duplicated turns, even
  across an eviction/resume cycle.

Scenarios are deterministic (simulated LLM, sequential ids, seeded
faults) and self-contained: each builds its own app over the in-house
AEP database and cleans up its arming state in ``finally``. The CLI
entry is ``fisql-repro chaos --scenario NAME``; the report is a list of
named checks with pass/fail and detail, rendered by the CLI and asserted
wholesale by tests and the CI chaos smoke job.
"""

from __future__ import annotations

import itertools
import threading
from pathlib import Path
from typing import Callable, Optional, Tuple

from repro import obs
from repro.chaos.diskfaults import (
    arm_disk_fault,
    disarm_disk_faults,
    disk_fault_stats,
)
from repro.chaos.transport import oversized_body, slow_loris, torn_body
from repro.core import DemonstrationRetriever
from repro.datasets import build_aep_database, generate_aep_suite
from repro.durability.journal import RunJournal
from repro.serve import (
    CatalogEntry,
    InProcessTransport,
    ServeApp,
    ServeClient,
    SessionManager,
    SessionStore,
    start_async_in_thread,
    start_in_thread,
)

#: (question, feedback) turns every scenario drives, per session.
_SCRIPT: Tuple[Tuple[str, str], ...] = (
    ("How many audiences were created in January?", "we are in 2024"),
    ("Which destinations were mapped to the Loyalty audience?", "only enabled ones"),
    ("How many profiles entered each audience last week?", "sort by count"),
)


def _catalog() -> dict:
    database = build_aep_database()
    _traffic, demos = generate_aep_suite(n_questions=8)
    return {"aep": CatalogEntry(database, DemonstrationRetriever(demos))}


def _sequential_ids(prefix: str = "s") -> Callable[[], str]:
    counter = itertools.count(1)
    return lambda: f"{prefix}{next(counter)}"


class _Check:
    """One named invariant and its verdict."""

    def __init__(self, name: str, passed: bool, detail: str = "") -> None:
        self.name = name
        self.passed = bool(passed)
        self.detail = detail

    def as_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


def _report(name: str, checks: list) -> dict:
    return {
        "scenario": name,
        "passed": all(check.passed for check in checks),
        "checks": [check.as_dict() for check in checks],
    }


# -- disk-full-mid-sweep -----------------------------------------------------------


def _drive_sweep(
    catalog: dict, journal: RunJournal, store_dir: Path, prefix: str
) -> list:
    """One deterministic serve sweep; returns the raw (status, body) list."""
    manager = SessionManager(
        id_factory=_sequential_ids(prefix), store=SessionStore(store_dir)
    )
    app = ServeApp(catalog, manager=manager, journal=journal)
    client = ServeClient.in_process(app)
    outputs = []
    for question, feedback in _SCRIPT:
        sid = client.create_session(db="aep")["id"]
        outputs.append(
            client.request_raw(
                "POST", f"/sessions/{sid}/ask", {"question": question}
            )
        )
        outputs.append(
            client.request_raw(
                "POST",
                f"/sessions/{sid}/feedback",
                {"feedback": feedback},
            )
        )
    return outputs


def disk_full_mid_sweep(work_dir: Path) -> dict:
    """ENOSPC mid-sweep: degrade, serve identical bytes, resume cleanly."""
    checks: list = []
    catalog = _catalog()
    degraded_dir = work_dir / "degraded"
    clean_dir = work_dir / "clean"
    obs.enable()
    try:
        # The third journal append hits a full disk, and the disk stays
        # full (sticky): everything after that must run from memory.
        arm_disk_fault(
            "disk.journal_append", on_hit=3, error="enospc", sticky=True
        )
        journal = RunJournal(degraded_dir / "journal")
        outputs_degraded = _drive_sweep(
            catalog, journal, degraded_dir / "sessions", "s"
        )
        journal.seal()
        journal.close()
        turns_ok = sum(1 for status, _body in outputs_degraded if status == 200)
        checks.append(
            _Check(
                "sweep completed while the disk was full",
                turns_ok == len(outputs_degraded),
                f"{turns_ok}/{len(outputs_degraded)} turns answered 200",
            )
        )
        checks.append(
            _Check(
                "journal flipped to degraded read-only mode",
                journal.degraded and journal.degraded_writes > 0,
                f"{journal.appended} durable, "
                f"{journal.degraded_writes} degraded appends",
            )
        )
        stats = disk_fault_stats()
        checks.append(
            _Check(
                "the fault actually fired",
                stats["injected"] >= 1,
                f"{stats['injected']} injected OSErrors",
            )
        )
        snapshot = obs.snapshot()
        degraded_counted = any(
            counter.get("name") == "durability.degraded"
            for counter in snapshot.get("counters", [])
        )
        checks.append(
            _Check(
                "durability.degraded counted for the run report",
                degraded_counted,
                "counter present in the obs snapshot",
            )
        )
    finally:
        disarm_disk_faults()
        obs.disable()

    # The survivors reload without drama: only records fsync'd before
    # the fault, no quarantined files anywhere (nothing was torn).
    reloaded = RunJournal(degraded_dir / "journal")
    checks.append(
        _Check(
            "surviving journal reloads cleanly",
            len(reloaded) == 2,
            f"{len(reloaded)} records survived (2 fsync'd before ENOSPC)",
        )
    )
    reloaded.close()
    corrupt = list(work_dir.glob("**/*.corrupt*"))
    checks.append(
        _Check(
            "no quarantined artifacts beyond injected ones",
            not corrupt,
            f"{len(corrupt)} .corrupt files",
        )
    )

    # Fault-free run: the disk fault must never have changed served bytes.
    clean_journal = RunJournal(clean_dir / "journal")
    outputs_clean = _drive_sweep(
        catalog, clean_journal, clean_dir / "sessions", "s"
    )
    clean_journal.seal()
    clean_journal.close()
    checks.append(
        _Check(
            "degraded run served byte-identical responses",
            outputs_degraded == outputs_clean,
            "all (status, body) pairs equal across degraded and clean runs",
        )
    )

    # Resume over the clean journal: same bytes out, nothing re-appended.
    resume_journal = RunJournal(clean_dir / "journal")
    outputs_resume = _drive_sweep(
        catalog, resume_journal, clean_dir / "sessions-resume", "s"
    )
    checks.append(
        _Check(
            "fault-free --resume is byte-identical",
            outputs_resume == outputs_clean,
            "resumed sweep replayed the same (status, body) pairs",
        )
    )
    checks.append(
        _Check(
            "resume re-appended nothing",
            resume_journal.appended == 0 and len(resume_journal) == 6,
            f"{resume_journal.appended} new appends over "
            f"{len(resume_journal)} journaled turns",
        )
    )
    resume_journal.close()
    return _report("disk-full-mid-sweep", checks)


# -- slow-loris-drain --------------------------------------------------------------


def _attack_one_transport(
    checks: list,
    label: str,
    port: int,
    torn_must_400: bool,
    drip_interval_s: float,
) -> None:
    """The shared attack battery against one listening transport.

    ``drip_interval_s`` shapes the loris. The threaded transport's
    defense is a per-recv socket timeout, which a *continuous* trickler
    resets with every byte — so it is probed with a stalling loris
    (drip slower than the deadline). The async transport bounds the
    whole head read with ``wait_for``, so it is probed with the harder
    continuous trickle. The gap is a recorded leave-out in ROADMAP.md.
    """
    lorises: list = []

    def _attack() -> None:
        lorises.append(
            slow_loris(
                "127.0.0.1",
                port,
                hold_s=4.0,
                drip_interval_s=drip_interval_s,
            )
        )

    threads = [threading.Thread(target=_attack, daemon=True) for _ in range(4)]
    for thread in threads:
        thread.start()

    # Real traffic must flow *while* the lorises are holding sockets.
    client = ServeClient.connect(port=port)
    session = client.create_session(db="aep")
    answer = client.ask(session["id"], _SCRIPT[0][0])
    checks.append(
        _Check(
            f"{label}: real traffic flows during the loris flood",
            bool(answer.get("answer", {}).get("sql")),
            "ask answered 200 with SQL while 4 lorises held sockets",
        )
    )
    ready_status, _body = client.request_raw("GET", "/readyz")
    checks.append(
        _Check(
            f"{label}: /readyz stays truthful under attack",
            ready_status == 200,
            "server is serving, so it must report ready",
        )
    )

    torn = torn_body("127.0.0.1", port)
    torn_ok = (
        torn["status"] == 400 if torn_must_400 else torn["status"] != 200
    )
    checks.append(
        _Check(
            f"{label}: torn body refused, never applied",
            torn_ok and torn["status"] != 200,
            f"torn request got {torn['status']}",
        )
    )
    oversized = oversized_body("127.0.0.1", port)
    checks.append(
        _Check(
            f"{label}: terabyte Content-Length refused up front",
            oversized["status"] == 413 and oversized["elapsed_s"] < 2.0,
            f"413 in {oversized['elapsed_s']}s, before any body read",
        )
    )

    for thread in threads:
        thread.join(timeout=10.0)
    cut = sum(1 for result in lorises if result.get("cut_off"))
    quick = all(result["elapsed_s"] < 3.5 for result in lorises)
    checks.append(
        _Check(
            f"{label}: every slow loris was cut off by the read deadline",
            cut == len(threads) and quick,
            f"{cut}/{len(threads)} cut off, slowest "
            f"{max((r['elapsed_s'] for r in lorises), default=0.0)}s",
        )
    )


def slow_loris_drain(work_dir: Path) -> dict:
    """Loris flood + torn/oversized bodies on both transports, then drain."""
    checks: list = []
    catalog = _catalog()

    app = ServeApp(catalog, manager=SessionManager(id_factory=_sequential_ids()))
    server, _thread = start_in_thread(
        app, port=0, read_timeout_ms=300.0, max_body_bytes=2048
    )
    try:
        _attack_one_transport(
            checks,
            "thread",
            server.port,
            torn_must_400=True,
            drip_interval_s=0.4,  # stalls past the 300ms per-read deadline
        )
        # Drain: /readyz must flip to not-ready the moment drain begins —
        # a balancer that believed an optimistic readyz would keep
        # routing to a server that refuses all mutations.
        app.begin_drain()
        client = ServeClient.connect(port=server.port)
        ready_status, _body = client.request_raw("GET", "/readyz")
        drained = app.await_idle(timeout=5.0)
        checks.append(
            _Check(
                "thread: /readyz stops lying the moment drain begins",
                ready_status == 503 and drained,
                f"readyz={ready_status} after begin_drain, idle={drained}",
            )
        )
    finally:
        server.shutdown()
        server.server_close()

    aapp = ServeApp(
        catalog, manager=SessionManager(id_factory=_sequential_ids("a"))
    )
    handle = start_async_in_thread(
        aapp, port=0, read_timeout_ms=300.0, max_body_bytes=2048
    )
    try:
        _attack_one_transport(
            checks,
            "async",
            handle.port,
            torn_must_400=False,
            drip_interval_s=0.05,  # continuous trickle; wait_for still cuts it
        )
    finally:
        handle.stop()
    return _report("slow-loris-drain", checks)


# -- retry-storm -------------------------------------------------------------------


class _ResponseEatingTransport:
    """In-process transport whose responses can be killed after apply.

    ``kill_next > 0`` makes the next mutating request apply server-side
    and then raise ``ConnectionResetError`` instead of returning — the
    client-visible shape of the server dying (or being ``kill -9``'d)
    after the turn committed but before the reply reached the wire.
    """

    def __init__(self, app: ServeApp) -> None:
        self._inner = InProcessTransport(app)
        self.kill_next = 0
        self.killed = 0

    def request_detailed(self, method, path, body=None, headers=None):
        result = self._inner.request_detailed(method, path, body, headers)
        if self.kill_next > 0 and method == "POST":
            self.kill_next -= 1
            self.killed += 1
            raise ConnectionResetError(
                "injected: server killed after applying the turn"
            )
        return result

    def request(self, method, path, body=None, headers=None):
        status, payload, _headers = self.request_detailed(
            method, path, body, headers
        )
        return status, payload


def retry_storm(work_dir: Path) -> dict:
    """Kill every first response; retries must not duplicate any turn."""
    checks: list = []
    catalog = _catalog()

    # Control: the same script against a calm server, no kills, no keys.
    control_journal = RunJournal(work_dir / "control-journal")
    control_app = ServeApp(
        catalog,
        manager=SessionManager(id_factory=_sequential_ids()),
        journal=control_journal,
    )
    control = ServeClient.in_process(control_app)
    control_sid = control.create_session(db="aep")["id"]
    for question, feedback in _SCRIPT:
        control.ask(control_sid, question)
        control.feedback(control_sid, feedback)
    control_transcript = control.transcript(control_sid)

    # Storm: every mutating response is eaten once, the client retries.
    journal = RunJournal(work_dir / "storm-journal")
    store = SessionStore(work_dir / "storm-sessions")
    manager = SessionManager(
        id_factory=_sequential_ids(), max_sessions=1, store=store
    )
    app = ServeApp(catalog, manager=manager, journal=journal)
    transport = _ResponseEatingTransport(app)
    sleeps: list = []
    client = ServeClient(
        transport,
        max_retries=3,
        retry_backoff_s=0.001,
        sleep=sleeps.append,
    )
    sid = client.create_session(db="aep")["id"]
    for question, feedback in _SCRIPT:
        transport.kill_next = 1
        client.ask(sid, question)
        transport.kill_next = 1
        client.feedback(sid, feedback)
    transcript = client.transcript(sid)

    kills = transport.killed
    checks.append(
        _Check(
            "every killed response was retried",
            kills == len(_SCRIPT) * 2 and client.retries >= kills,
            f"{kills} responses eaten, {client.retries} retries, "
            f"{len(sleeps)} backoff sleeps",
        )
    )
    checks.append(
        _Check(
            "zero duplicated turns despite the storm",
            transcript["turns"] == control_transcript["turns"],
            f"{len(transcript['turns'])} transcript turns, "
            "identical to the calm control run",
        )
    )
    checks.append(
        _Check(
            "journal holds each turn exactly once",
            len(journal) == len(control_journal),
            f"{len(journal)} journaled turns vs {len(control_journal)} "
            "in the calm control run",
        )
    )

    # Evict (max_sessions=1 forces it), resume, and replay an *old* key:
    # the dedup memory must survive the disk round-trip.
    transport.kill_next = 0
    first_bytes = client.request_detailed(
        "POST",
        f"/sessions/{sid}/ask",
        {"question": _SCRIPT[0][0]},
        headers={"Idempotency-Key": "storm-final"},
    )
    client.create_session(db="aep")  # second session evicts sid to disk
    status, _raw, _headers = client.request_detailed(
        "POST", "/sessions", {"db": "aep", "resume": sid}
    )
    replay_status, replay_raw, replay_headers = client.request_detailed(
        "POST",
        f"/sessions/{sid}/ask",
        {"question": _SCRIPT[0][0]},
        headers={"Idempotency-Key": "storm-final"},
    )
    checks.append(
        _Check(
            "replay memory survives evict + resume",
            status == 201
            and replay_status == 200
            and replay_raw == first_bytes[1]
            and replay_headers.get("Idempotency-Replayed") == "true",
            "retried key after resume returned the original bytes",
        )
    )
    journal.close()
    control_journal.close()
    return _report("retry-storm", checks)


#: The named scenarios ``fisql-repro chaos`` can run.
SCENARIOS: dict = {
    "disk-full-mid-sweep": disk_full_mid_sweep,
    "slow-loris-drain": slow_loris_drain,
    "retry-storm": retry_storm,
}


def run_scenario(name: str, work_dir: Optional[Path] = None) -> dict:
    """Run one named scenario; returns its report dict.

    With no ``work_dir`` a temporary directory is used and removed.
    """
    import tempfile

    runner = SCENARIOS.get(name)
    if runner is None:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    if work_dir is not None:
        target = Path(work_dir) / name
        target.mkdir(parents=True, exist_ok=True)
        return runner(target)
    with tempfile.TemporaryDirectory(prefix=f"fisql-chaos-{name}-") as tmp:
        return runner(Path(tmp))
