"""Hostile HTTP clients: raw-socket attack traffic for the serve layer.

Where :mod:`repro.chaos.diskfaults` attacks the storage plane, this
module attacks the wire. Each injector is a deliberately misbehaving
client built on bare sockets — no :mod:`http.client`, which is too
polite to produce these shapes:

* :func:`slow_loris` — opens a connection and trickles (or stalls) the
  request head, holding server resources open. Against a hardened
  transport (``read_timeout_ms``) the server must cut the connection
  loose instead of parking a thread or buffer on it forever.
* :func:`torn_body` — declares ``Content-Length: N``, sends fewer than
  ``N`` bytes, then half-closes. The server must answer 400 (threaded
  transport) or drop the connection (async transport) — never hand a
  truncated body to the app.
* :func:`oversized_body` — declares a huge ``Content-Length`` without
  sending the body. A capped transport answers 413 *before* reading
  (and before allocating) anything.

All injectors are synchronous, bounded by explicit timeouts, and return
plain dicts the scenario runner turns into pass/fail checks. They are
attack *probes*, not load generators: one connection each, so scenarios
stay deterministic and CI-fast.
"""

from __future__ import annotations

import socket
import time
from typing import Optional


def _connect(host: str, port: int, timeout_s: float) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.settimeout(timeout_s)
    return sock


def _drain_response(sock: socket.socket) -> bytes:
    """Everything the server sends until it closes or we time out."""
    chunks = []
    try:
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    except (socket.timeout, OSError):
        pass
    return b"".join(chunks)


def _status_of(response: bytes) -> Optional[int]:
    """The HTTP status code of a raw response, None when unparseable."""
    try:
        head = response.split(b"\r\n", 1)[0].decode("latin-1")
        return int(head.split(" ")[1])
    except (IndexError, ValueError):
        return None


def slow_loris(
    host: str,
    port: int,
    hold_s: float = 5.0,
    drip_interval_s: float = 0.05,
    timeout_s: float = 10.0,
) -> dict:
    """Trickle an unfinished request head; report how the server reacts.

    Sends a valid request line, then drips one header byte per
    ``drip_interval_s`` without ever finishing the head, for at most
    ``hold_s`` seconds. Returns::

        {"cut_off": bool,      # server closed/refused before hold_s ran out
         "elapsed_s": float,   # how long the connection survived
         "status": int|None}   # status the server sent on the way out (408…)

    ``cut_off=False`` after a full ``hold_s`` means the server tolerated
    the loris for the whole window — on a hardened transport with a read
    deadline shorter than ``hold_s``, that is a failed defense.
    """
    started = time.monotonic()
    sock = _connect(host, port, timeout_s)
    cut_off = False
    response = b""
    try:
        sock.sendall(b"POST /sessions HTTP/1.1\r\n")
        drip = b"X-Drip: " + b"a" * 64  # never terminated with CRLFCRLF
        deadline = started + hold_s
        for index in range(len(drip)):
            if time.monotonic() >= deadline:
                break
            try:
                sock.sendall(drip[index : index + 1])
            except OSError:
                cut_off = True  # server already tore the connection down
                break
            time.sleep(drip_interval_s)
        if not cut_off:
            # A read deadline fires while we dawdle: the server either
            # sends a 408 and closes, or just closes. Either counts; a
            # recv that *times out* means the server is still patiently
            # holding our connection — the defense did not fire.
            sock.settimeout(max(0.05, deadline - time.monotonic()) + 1.0)
            try:
                first = sock.recv(4096)
                if first:
                    response = first + _drain_response(sock)
                cut_off = True
            except (socket.timeout, TimeoutError):
                cut_off = False
            except OSError:
                cut_off = True
    finally:
        elapsed = time.monotonic() - started
        try:
            sock.close()
        except OSError:
            pass
    return {
        "cut_off": cut_off,
        "elapsed_s": round(elapsed, 3),
        "status": _status_of(response),
    }


def torn_body(
    host: str,
    port: int,
    path: str = "/sessions",
    declared: int = 512,
    sent: bytes = b'{"db": "aep',
    timeout_s: float = 10.0,
) -> dict:
    """Declare ``declared`` body bytes, send fewer, then half-close.

    Returns ``{"status": int|None, "body": bytes}`` — the transport's
    verdict on the torn request. A hardened threaded transport answers
    400 (``incomplete_body``); the async transport may simply drop the
    connection (``status=None``), which is also a safe outcome. What
    must never happen is a 2xx: that would mean a truncated body was
    parsed and applied.
    """
    sock = _connect(host, port, timeout_s)
    try:
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {declared}\r\n"
            "\r\n"
        ).encode("latin-1")
        sock.sendall(head + sent)
        sock.shutdown(socket.SHUT_WR)  # we will never send the rest
        response = _drain_response(sock)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    body = response.split(b"\r\n\r\n", 1)[-1] if response else b""
    return {"status": _status_of(response), "body": body}


def oversized_body(
    host: str,
    port: int,
    path: str = "/sessions",
    declared: int = 1 << 40,
    timeout_s: float = 10.0,
) -> dict:
    """Declare a terabyte body and send none of it.

    Returns ``{"status": int|None, "elapsed_s": float}``. A capped
    transport answers 413 immediately — ``elapsed_s`` near zero proves
    the refusal happened before any read of the (nonexistent) body.
    """
    started = time.monotonic()
    sock = _connect(host, port, timeout_s)
    try:
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {declared}\r\n"
            "\r\n"
        ).encode("latin-1")
        sock.sendall(head)
        response = _drain_response(sock)
    finally:
        try:
            sock.close()
        except OSError:
            pass
    return {
        "status": _status_of(response),
        "elapsed_s": round(time.monotonic() - started, 3),
    }
