"""Thread-safe session registry: IDs, per-session locks, TTL + LRU.

:class:`SessionManager` owns the map from session IDs to live
:class:`~repro.core.chat.ChatSession` objects. Its concurrency model:

* One **manager lock** guards the registry map itself (create/lookup/
  evict). It is never held across a chat turn.
* One **per-session lock** serializes the turns of a single conversation,
  so two racing requests against the same session cannot interleave their
  ask/feedback state. Different sessions proceed fully in parallel.

Capacity policy (checked on every ``create``):

1. **TTL sweep** — sessions idle longer than ``ttl_seconds`` are evicted
   (lazily on create, or explicitly via :meth:`sweep`).
2. **LRU eviction** — at ``max_sessions``, the least-recently-used *idle*
   session is evicted to admit the newcomer.
3. **Admission gate** — if every resident session is mid-request, the
   create is refused with :class:`SessionLimitError` (a 503 on the wire):
   shedding new conversations beats stalling live ones.

A session whose lock is held is never evicted, by TTL or LRU: eviction
must not yank a conversation out from under an in-flight turn.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro import obs
from repro.core.chat import ChatSession
from repro.errors import ReproError
from repro.serve.idempotency import IdempotencyIndex
from repro.serve.persistence import SessionStore

#: Default registry capacity.
DEFAULT_MAX_SESSIONS = 128


class SessionError(ReproError):
    """Base class for session-registry failures."""


class UnknownSessionError(SessionError):
    """The session ID is not (or no longer) resident."""

    def __init__(self, session_id: str) -> None:
        super().__init__(f"unknown session {session_id!r}")
        self.session_id = session_id


class SessionLimitError(SessionError):
    """The registry is full and nothing is evictable right now."""

    def __init__(self, max_sessions: int) -> None:
        super().__init__(
            f"session limit reached ({max_sessions}); all resident "
            "sessions are busy — retry shortly"
        )
        self.max_sessions = max_sessions


class SessionRecord:
    """One resident session and its bookkeeping."""

    __slots__ = (
        "session_id",
        "tenant",
        "db_id",
        "chat",
        "lock",
        "created_at",
        "last_used_at",
        "requests",
        "idempotency",
    )

    def __init__(
        self,
        session_id: str,
        tenant: str,
        db_id: str,
        chat: ChatSession,
        now: float,
    ) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.db_id = db_id
        self.chat = chat
        self.lock = threading.Lock()
        self.created_at = now
        self.last_used_at = now
        self.requests = 0
        # Mutated only under `lock` (turns serialize on it), persisted
        # alongside the chat state so retries survive evict/resume.
        self.idempotency = IdempotencyIndex()


def _default_id_factory() -> Callable[[], str]:
    counter = itertools.count(1)
    prefix = os.urandom(3).hex()

    def make() -> str:
        return f"s-{prefix}-{next(counter):04d}"

    return make


class SessionManager:
    """Registry of live sessions with TTL + LRU eviction and admission."""

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        id_factory: Optional[Callable[[], str]] = None,
        store: Optional[SessionStore] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1: {max_sessions}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be > 0: {ttl_seconds}")
        self._max_sessions = max_sessions
        self._ttl_seconds = ttl_seconds
        self._clock = clock
        self._id_factory = id_factory or _default_id_factory()
        self._store = store
        self._lock = threading.Lock()
        self._records: dict[str, SessionRecord] = {}
        self.created = 0
        self.evicted_ttl = 0
        self.evicted_lru = 0
        self.rejected = 0
        self.persisted = 0
        self.restored = 0

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def max_sessions(self) -> int:
        return self._max_sessions

    @property
    def store(self) -> Optional[SessionStore]:
        return self._store

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._records)

    def peek_tenant(self, session_id: str) -> Optional[str]:
        """A resident session's tenant without touching its per-session lock.

        The load-shedding gate needs the tenant *before* deciding whether
        to queue behind the session — peeking must never block on a turn.
        """
        with self._lock:
            record = self._records.get(session_id)
            return record.tenant if record is not None else None

    def stats(self) -> dict:
        """Lifetime counters plus current residency."""
        with self._lock:
            return {
                "resident": len(self._records),
                "max_sessions": self._max_sessions,
                "created": self.created,
                "evicted_ttl": self.evicted_ttl,
                "evicted_lru": self.evicted_lru,
                "rejected": self.rejected,
                "persisted": self.persisted,
                "restored": self.restored,
            }

    # -- lifecycle ------------------------------------------------------------------

    def create(
        self,
        chat_factory: Callable[[], ChatSession],
        tenant: str = "default",
        db_id: str = "",
        resume_id: Optional[str] = None,
    ) -> SessionRecord:
        """Admit a new session, evicting per the capacity policy.

        ``resume_id`` re-opens a previously evicted session: its persisted
        transcript is restored into the fresh chat and the session keeps
        its original id. Resume is move semantics — the persisted file is
        consumed on success.

        Raises:
            SessionLimitError: full and every resident session is busy.
            UnknownSessionError: ``resume_id`` has no persisted state.
            SessionError: ``resume_id`` is still resident, or its persisted
                tenant/database does not match the request.
        """
        with self._lock:
            now = self._clock()
            self._sweep_locked(now)
            saved: Optional[dict] = None
            if resume_id is not None:
                saved = self._load_for_resume_locked(resume_id, tenant, db_id)
            if len(self._records) >= self._max_sessions:
                victim = self._lru_victim_locked()
                if victim is None:
                    self.rejected += 1
                    obs.count("serve.sessions.rejected")
                    raise SessionLimitError(self._max_sessions)
                self._evict_locked(victim, reason="lru")
            if resume_id is not None:
                session_id = resume_id
            else:
                session_id = self._id_factory()
            if session_id in self._records:
                raise SessionError(
                    f"id factory produced a duplicate id {session_id!r}"
                )
            chat = chat_factory()
            if saved is not None:
                chat.restore_state(saved["state"])
            record = SessionRecord(session_id, tenant, db_id, chat, now)
            if saved is not None:
                record.idempotency.restore(saved.get("idempotency"))
            self._records[session_id] = record
            self.created += 1
            obs.count("serve.sessions.created", tenant=tenant)
            if saved is not None:
                assert self._store is not None
                self._store.pop(session_id)
                self.restored += 1
                obs.count("serve.sessions.restored", tenant=tenant)
            return record

    def _load_for_resume_locked(
        self, resume_id: str, tenant: str, db_id: str
    ) -> dict:
        if resume_id in self._records:
            raise SessionError(
                f"session {resume_id!r} is still resident; use it directly "
                "instead of resuming"
            )
        if self._store is None:
            raise SessionError(
                "session persistence is not configured; cannot resume "
                f"{resume_id!r}"
            )
        saved = self._store.load(resume_id)
        if saved is None:
            raise UnknownSessionError(resume_id)
        if db_id and saved.get("db") != db_id:
            raise SessionError(
                f"session {resume_id!r} was opened against database "
                f"{saved.get('db')!r}, not {db_id!r}"
            )
        if saved.get("tenant") != tenant:
            raise SessionError(
                f"session {resume_id!r} belongs to tenant "
                f"{saved.get('tenant')!r}, not {tenant!r}"
            )
        return saved

    def remove(self, session_id: str) -> bool:
        """Drop a session; False when it was not resident."""
        with self._lock:
            return self._records.pop(session_id, None) is not None

    def sweep(self) -> list[str]:
        """Evict every TTL-expired idle session; returns the evicted IDs."""
        with self._lock:
            return self._sweep_locked(self._clock())

    @contextmanager
    def acquire(self, session_id: str) -> Iterator[SessionRecord]:
        """Hold a session's lock for the duration of one request.

        Blocks while another request is mid-turn on the same session.
        Raises :class:`UnknownSessionError` when the ID is not resident —
        including the (tiny) window where the session was evicted between
        lookup and lock acquisition.
        """
        with self._lock:
            record = self._records.get(session_id)
        if record is None:
            raise UnknownSessionError(session_id)
        with record.lock:
            with self._lock:
                if self._records.get(session_id) is not record:
                    raise UnknownSessionError(session_id)
                record.last_used_at = self._clock()
            try:
                yield record
            finally:
                with self._lock:
                    record.last_used_at = self._clock()
                    record.requests += 1

    # -- eviction internals (manager lock held) -------------------------------------

    def _sweep_locked(self, now: float) -> list[str]:
        if self._ttl_seconds is None:
            return []
        expired = [
            record
            for record in self._records.values()
            if now - record.last_used_at > self._ttl_seconds
            and not record.lock.locked()
        ]
        for record in expired:
            self._evict_locked(record, reason="ttl")
        return [record.session_id for record in expired]

    def _lru_victim_locked(self) -> Optional[SessionRecord]:
        idle = [
            record
            for record in self._records.values()
            if not record.lock.locked()
        ]
        if not idle:
            return None
        return min(idle, key=lambda record: record.last_used_at)

    def _evict_locked(self, record: SessionRecord, reason: str) -> None:
        del self._records[record.session_id]
        if reason == "ttl":
            self.evicted_ttl += 1
        else:
            self.evicted_lru += 1
        obs.count("serve.sessions.evicted", reason=reason)
        # Only idle sessions are ever evicted, so reading the chat state
        # here races with nothing.
        if self._store is not None:
            if self._store.save(
                record.session_id,
                record.tenant,
                record.db_id,
                record.chat.state(),
                idempotency=record.idempotency.state(),
            ):
                self.persisted += 1
                obs.count("serve.sessions.persisted", reason=reason)
