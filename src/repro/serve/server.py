"""The FISQL session server: JSON-over-HTTP on the stdlib, no deps.

Two layers:

* :class:`ServeApp` — the transport-independent request handler. It owns
  the database catalog, the :class:`~repro.serve.sessions.SessionManager`,
  and one resilience stack *per tenant*; ``handle()`` maps
  ``(method, path, body)`` to ``(status, content-type, body bytes)``.
  Tests and the in-process client transport call it directly, so every
  behaviour is exercisable without binding a port.
* :class:`ServeHTTPServer` — a ``ThreadingHTTPServer`` whose handler is a
  thin shim over ``app.handle``; one OS thread per in-flight request.

Routes::

    POST   /sessions                  open a session        -> 201
    GET    /sessions                  list resident ids     -> 200
    GET    /sessions/{id}             session info          -> 200
    DELETE /sessions/{id}             close a session       -> 200
    POST   /sessions/{id}/ask         fresh question        -> 200
    POST   /sessions/{id}/feedback    feedback on answer    -> 200
    GET    /sessions/{id}/transcript  full conversation     -> 200
    GET    /healthz                   liveness + residency  -> 200
    GET    /readyz                    readiness + breakers  -> 200/503
    GET    /metrics                   Prometheus exposition -> 200
    GET    /statusz                   live telemetry (JSON) -> 200

**Correlation ids.** Every request runs under a request id — honored from
a well-formed ``X-Request-Id`` header, minted otherwise — bound in a
context-local (:mod:`repro.obs.context`) for the whole dispatch, so spans,
structured events, cache counters, and journal appends all carry it. The
id is echoed back in the ``X-Request-Id`` response header (never in the
body: response bytes stay transport-independent).

**Telemetry.** The app owns a :class:`~repro.obs.telemetry.TelemetryHub`
(windowed per-route/per-tenant latency percentiles, SLO attainment and
error-budget burn against the policy's latency objective) regardless of
whether the global ``obs`` switch is on; ``/statusz`` serves its snapshot
and ``/metrics`` folds it into the Prometheus page.

**Tenant isolation.** Each tenant gets its own
:class:`~repro.resilience.ResilientChatModel` (retry/deadline) around the
shared base model, with a *private* circuit breaker: a failing tenant's
breaker trips to 503 ``circuit_open`` while every other tenant keeps
completing — one noisy tenant cannot starve the rest.

**Graceful drain.** ``begin_drain()`` flips the app into drain mode: new
mutating requests are refused with 503 ``draining`` (``/healthz`` reports
``"draining"``), in-flight requests run to completion, and
``await_idle()`` blocks until the last one finishes. ``run_server``
wires SIGINT/SIGTERM to exactly that sequence before closing the socket.
"""

from __future__ import annotations

import math
import re
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from repro import obs
from repro.core.chat import ChatSession
from repro.core.nl2sql import Nl2SqlModel
from repro.core.retrieval import DemonstrationRetriever
from repro.durability.journal import RunJournal
from repro.errors import CircuitOpenError, LLMError, OverloadError, ReproError
from repro.llm.dispatch import (
    BatchingChatModel,
    CachingChatModel,
    CompletionCache,
    LoopBatchingChatModel,
)
from repro.serve.overload import LoadShedGate
from repro.llm.interface import ChatModel
from repro.llm.router import BackendPool, RoutingChatModel
from repro.llm.simulated import SimulatedLLM
from repro.obs.promtext import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.telemetry import SloPolicy, TelemetryHub
from repro.resilience import CircuitBreaker, ResilientChatModel, RetryPolicy
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    AskRequest,
    CreateSessionRequest,
    FeedbackRequest,
    ProtocolError,
    answer_view,
    error_payload,
    json_decode,
    json_encode,
    normalize_idempotency_key,
    normalize_request_id,
    turn_view,
)
from repro.semcache.store import SemanticAnswerCache
from repro.serve.sessions import (
    SessionLimitError,
    SessionManager,
    SessionRecord,
    UnknownSessionError,
)
from repro.sql.engine import Database

JSON = "application/json"
TEXT = "text/plain; charset=utf-8"

#: Seconds ``run_server`` waits for in-flight requests after a signal.
DEFAULT_DRAIN_GRACE = 10.0

#: Hard ceiling on request bodies when no ``--max-body-bytes`` is set.
#: A ``Content-Length`` is attacker-controlled input that both transports
#: would otherwise trust with an allocation, so "unlimited" is never the
#: default; real protocol traffic is a few KB.
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


def _retry_after_header(seconds: float) -> str:
    """``Retry-After`` wants integral seconds; round up, floor at 1."""
    return str(max(1, math.ceil(seconds)))


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant resilience + dispatch configuration (one stack each).

    ``batch_max > 1`` puts a bounded-wait request coalescer in front of the
    tenant's resilience stack: concurrent asks from that tenant's sessions
    are grouped into one ``complete_batch`` dispatch, waiting at most
    ``batch_wait_ms`` to fill a batch; ``batch_max_queue`` bounds that
    coalescer's queue (backpressure instead of unbounded buffering).

    The overload knobs feed the app's :class:`LoadShedGate`:
    ``max_inflight_total``/``max_inflight_per_tenant`` cap concurrent
    LLM-bound requests (503 ``overloaded`` / 429 ``tenant_overloaded``),
    and ``request_deadline_ms`` sheds requests that queued too long behind
    a busy session (503 ``deadline_exceeded``).
    """

    max_retries: int = 2
    deadline_ms: Optional[float] = None
    breaker_threshold: int = 5
    breaker_reset_ms: float = 30_000.0
    batch_max: int = 1
    batch_wait_ms: float = 5.0
    batch_max_queue: Optional[int] = None
    max_inflight_total: Optional[int] = None
    max_inflight_per_tenant: Optional[int] = None
    request_deadline_ms: Optional[float] = None
    #: Per-tenant latency objective for /statusz SLO accounting: ``slo_target``
    #: of a tenant's requests should finish under ``slo_latency_ms`` (and not
    #: 5xx). ``None`` keeps the default objective (500 ms).
    slo_latency_ms: Optional[float] = None
    slo_target: float = 0.95
    #: Router policy (only used when the app has a backend pool): prompt-kind
    #: -> backend-name pairs (a tuple so the dataclass stays hashable/frozen)
    #: and the tail-latency hedging delay. An empty route map sends every
    #: kind to the pool's first backend with failover down the pool order.
    route_map: "tuple[tuple[str, str], ...]" = field(default=())
    hedge_after_ms: Optional[float] = None

    def slo(self) -> SloPolicy:
        """The telemetry-plane SLO this policy configures."""
        if self.slo_latency_ms is None:
            return SloPolicy(target=self.slo_target)
        return SloPolicy(latency_ms=self.slo_latency_ms, target=self.slo_target)


@dataclass
class CatalogEntry:
    """One hosted database plus the demo retriever its sessions share."""

    database: Database
    retriever: Optional[DemonstrationRetriever] = None


class ServeApp:
    """Transport-independent request handling for the session server."""

    def __init__(
        self,
        catalog: dict[str, CatalogEntry],
        llm: Optional[ChatModel] = None,
        manager: Optional[SessionManager] = None,
        policy: TenantPolicy = TenantPolicy(),
        llm_factory: Optional[Callable[[str], ChatModel]] = None,
        clock: Callable[[], float] = time.monotonic,
        cache: Optional[CompletionCache] = None,
        journal: Optional[RunJournal] = None,
        request_id_factory: Optional[Callable[[], str]] = None,
        pool: Optional[BackendPool] = None,
        tenant_policies: Optional[dict[str, TenantPolicy]] = None,
        semcache: Optional[SemanticAnswerCache] = None,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must host at least one database")
        self._catalog = dict(catalog)
        self._base_llm = llm or SimulatedLLM()
        # `manager or ...` would discard an *empty* manager (len() == 0
        # makes it falsy); test for None explicitly.
        self._manager = manager if manager is not None else SessionManager()
        self._policy = policy
        self._tenant_policies = dict(tenant_policies or {})
        self._pool = pool
        self._llm_factory = llm_factory or self._default_llm_factory
        self._clock = clock
        self._telemetry = TelemetryHub(clock=clock, slo=policy.slo())
        if pool is not None:
            # Per-backend outcome/latency feed for the live telemetry plane.
            pool.set_outcome_hook(self._telemetry.record_backend)
        self._shared_cache = cache
        if cache is not None and pool is None:
            # One completion cache shared by every tenant stack, with its
            # hit/miss feed wired into the live telemetry. With a backend
            # pool the cache instead wraps each tenant's router facade
            # (cache sits *above* the router) — see the factory.
            self._base_llm = CachingChatModel(
                self._base_llm, cache, on_lookup=self._telemetry.record_cache
            )
        self._semcache = semcache
        if semcache is not None:
            # Semantic hit/miss/bypass feed for the windowed telemetry
            # (the cache panel in `top`, semcache rates on /statusz).
            semcache.set_outcome_hook(self._telemetry.record_semcache)
        self._journal = journal
        self._request_id_factory = request_id_factory or obs.new_request_id
        self._tenant_llms: dict[str, ChatModel] = {}
        self._tenant_lock = threading.Lock()
        self._gate = LoadShedGate(
            max_inflight=policy.max_inflight_total,
            max_inflight_per_tenant=policy.max_inflight_per_tenant,
            deadline_ms=policy.request_deadline_ms,
            clock=clock,
        )
        self._draining = False
        self._inflight = 0
        self._idle = threading.Condition()
        # Async-transport context: set by the adapter before serving.
        self._loop_batching: Optional[tuple] = None
        self._loop_health: Optional[Callable[[], dict]] = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_context(cls, context, **kwargs) -> "ServeApp":
        """Host every database of an experiment context.

        SPIDER databases share the SPIDER train-pool retriever, AEP
        databases the in-house demo retriever — the same RAG stacks the
        batch experiments use, preloaded once and shared read-only by
        every session.
        """
        catalog: dict[str, CatalogEntry] = {}
        spider_retriever = context.spider_assistant_model().retriever
        for db_id, database in context.spider.benchmark.databases.items():
            catalog[db_id] = CatalogEntry(database, spider_retriever)
        aep_retriever = context.aep_assistant_model().retriever
        for db_id, database in context.aep_benchmark.databases.items():
            catalog.setdefault(db_id, CatalogEntry(database, aep_retriever))
        kwargs.setdefault("llm", context.llm)
        return cls(catalog, **kwargs)

    @property
    def manager(self) -> SessionManager:
        return self._manager

    @property
    def databases(self) -> list[str]:
        return sorted(self._catalog)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def gate(self) -> LoadShedGate:
        return self._gate

    @property
    def telemetry(self) -> TelemetryHub:
        return self._telemetry

    @property
    def journal(self) -> Optional[RunJournal]:
        return self._journal

    @property
    def pool(self) -> Optional[BackendPool]:
        """The shared backend pool (None for single-model serving)."""
        return self._pool

    @property
    def semcache(self) -> Optional[SemanticAnswerCache]:
        """The shared semantic answer store (None when not enabled)."""
        return self._semcache

    # -- async-transport wiring -------------------------------------------------

    def enable_loop_batching(self, loop, dispatch_executor) -> None:
        """Coalesce tenant batches by event-loop tick instead of threads.

        The async transport calls this before serving: tenant stacks built
        afterwards use :class:`LoopBatchingChatModel` (batches form on the
        loop, dispatch on ``dispatch_executor``) instead of the
        cross-thread leader/follower coalescer. Must be called before the
        first session is created — stacks are built lazily per tenant and
        are not rebuilt.
        """
        self._loop_batching = (loop, dispatch_executor)

    def set_loop_health(self, provider: Optional[Callable[[], dict]]) -> None:
        """Install the transport's loop-health snapshot (lag, queue depth).

        Surfaces on ``/statusz`` (``loop`` section) and ``/metrics``
        (``fisql_serve_loop_lag_ms``, ``fisql_serve_executor_queue``).
        """
        self._loop_health = provider

    # -- tenant isolation -----------------------------------------------------------

    def policy_for_tenant(self, tenant: str) -> TenantPolicy:
        """The tenant's policy: its own entry, else the app default."""
        return self._tenant_policies.get(tenant, self._policy)

    def _default_llm_factory(self, tenant: str) -> ChatModel:
        policy = self.policy_for_tenant(tenant)
        model: ChatModel
        if self._pool is not None:
            # Routed serving: the pool's backends already carry their own
            # resilient stacks and backend-scoped breakers; each tenant
            # gets a cheap routing facade with its policy's route map and
            # hedging, with the shared cache *above* the router (a cache
            # hit must never touch — or fail over — a backend).
            model = RoutingChatModel(
                self._pool,
                route_map=dict(policy.route_map),
                hedge_after_ms=policy.hedge_after_ms,
            )
            if self._shared_cache is not None:
                model = CachingChatModel(
                    model,
                    self._shared_cache,
                    on_lookup=self._telemetry.record_cache,
                )
        else:
            model = ResilientChatModel(
                self._base_llm,
                retry=RetryPolicy(
                    max_retries=policy.max_retries,
                    deadline_ms=policy.deadline_ms,
                ),
                breaker=CircuitBreaker(
                    failure_threshold=policy.breaker_threshold,
                    reset_after_ms=policy.breaker_reset_ms,
                    clock=self._clock,
                    name=tenant,
                    labels={"tenant": tenant},
                ),
                clock=self._clock,
            )
        if policy.batch_max <= 1:
            return model
        if self._loop_batching is not None:
            loop, dispatch_executor = self._loop_batching
            return LoopBatchingChatModel(
                model,
                loop,
                dispatch_executor,
                max_batch=policy.batch_max,
                max_wait_ms=policy.batch_wait_ms,
                max_queue=policy.batch_max_queue,
            )
        return BatchingChatModel(
            model,
            max_batch=policy.batch_max,
            max_wait_ms=policy.batch_wait_ms,
            max_queue=policy.batch_max_queue,
        )

    def llm_for_tenant(self, tenant: str) -> ChatModel:
        """The tenant's resilience stack (created on first use)."""
        with self._tenant_lock:
            if tenant not in self._tenant_llms:
                self._tenant_llms[tenant] = self._llm_factory(tenant)
                obs.count("serve.tenants.created")
            return self._tenant_llms[tenant]

    # -- drain ----------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting mutating requests; in-flight ones complete.

        Tenant batchers are drained too: enqueued prompts settle, new ones
        are shed — a coalescer must not keep buffering work the route
        layer already refuses.
        """
        self._draining = True
        with self._tenant_lock:
            models = list(self._tenant_llms.values())
        for model in models:
            if isinstance(model, (BatchingChatModel, LoopBatchingChatModel)):
                model.begin_drain()
        obs.count("serve.drain.begun")

    def await_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    # -- dispatch ---------------------------------------------------------------------

    _ROUTES = [
        (re.compile(r"^/healthz$"), "healthz", {"GET"}),
        (re.compile(r"^/readyz$"), "readyz", {"GET"}),
        (re.compile(r"^/metrics$"), "metrics", {"GET"}),
        (re.compile(r"^/statusz$"), "statusz", {"GET"}),
        (re.compile(r"^/sessions$"), "sessions", {"GET", "POST"}),
        (re.compile(r"^/sessions/([^/]+)$"), "session", {"GET", "DELETE"}),
        (re.compile(r"^/sessions/([^/]+)/ask$"), "ask", {"POST"}),
        (re.compile(r"^/sessions/([^/]+)/feedback$"), "feedback", {"POST"}),
        (
            re.compile(r"^/sessions/([^/]+)/transcript$"),
            "transcript",
            {"GET"},
        ),
    ]

    def handle(
        self, method: str, path: str, raw_body: bytes = b""
    ) -> Tuple[int, str, bytes]:
        """One request in, ``(status, content_type, body_bytes)`` out."""
        status, ctype, body, _headers = self.handle_request(
            method, path, raw_body
        )
        return status, ctype, body

    def handle_request(
        self,
        method: str,
        path: str,
        raw_body: bytes = b"",
        headers: Optional[dict] = None,
    ) -> Tuple[int, str, bytes, dict]:
        """Full request handling: the 3-tuple plus response headers.

        The caller's ``X-Request-Id`` (any header-name casing) is honored
        when well-formed, else a fresh id is minted; either way the id is
        bound as the current request context for the whole dispatch and
        echoed back in the response headers.
        """
        arrived_at = self._clock()
        request_id = None
        idempotency_key = None
        if headers:
            for name, value in headers.items():
                lowered = str(name).lower()
                if lowered == "x-request-id" and request_id is None:
                    request_id = normalize_request_id(str(value))
                elif lowered == "idempotency-key":
                    idempotency_key = str(value)
        if request_id is None:
            request_id = self._request_id_factory()
        route, session_id, allowed = self._match(path)
        with self._idle:
            self._inflight += 1
        try:
            with obs.request_context(request_id):
                with obs.span(
                    "serve.request",
                    route=route,
                    method=method,
                    request_id=request_id,
                ) as sp:
                    with obs.timer("serve.latency_ms", route=route):
                        status, ctype, body, extra_headers = self._dispatch(
                            route,
                            allowed,
                            method,
                            session_id,
                            raw_body,
                            arrived_at,
                            idempotency_key,
                        )
                    sp.set("status", status)
                obs.count("serve.requests", route=route, status=status)
                duration_ms = (self._clock() - arrived_at) * 1000.0
                tenant = (
                    self._manager.peek_tenant(session_id)
                    if session_id is not None
                    else None
                )
                self._telemetry.record_request(
                    route, tenant, status, duration_ms
                )
                obs.event(
                    "serve.request",
                    route=route,
                    method=method,
                    status=status,
                    duration_ms=round(duration_ms, 3),
                    tenant=tenant,
                )
            return (
                status,
                ctype,
                body,
                dict(extra_headers, **{"X-Request-Id": request_id}),
            )
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _match(self, path: str):
        for pattern, route, allowed in self._ROUTES:
            match = pattern.match(path)
            if match:
                groups = match.groups()
                return route, (groups[0] if groups else None), allowed
        return "unknown", None, set()

    def _dispatch(
        self,
        route: str,
        allowed: set,
        method: str,
        session_id: Optional[str],
        raw_body: bytes,
        arrived_at: float,
        idempotency_key: Optional[str] = None,
    ) -> Tuple[int, str, bytes, dict]:
        try:
            if idempotency_key is not None:
                idempotency_key = normalize_idempotency_key(idempotency_key)
            if route == "unknown":
                raise ProtocolError(404, "not_found", "no such route")
            if method not in allowed:
                raise ProtocolError(
                    405,
                    "method_not_allowed",
                    f"{method} not allowed here",
                    {"allowed": sorted(allowed)},
                )
            if self._draining and method in ("POST", "DELETE"):
                raise ProtocolError(
                    503,
                    "draining",
                    "server is draining; not accepting new work",
                )
            if route == "healthz":
                return self._json(200, self._health_payload())
            if route == "readyz":
                ready, payload = self._ready_payload()
                return self._json(200 if ready else 503, payload)
            if route == "metrics":
                return (
                    200,
                    PROMETHEUS_CONTENT_TYPE,
                    self._metrics_text().encode("utf-8"),
                    {},
                )
            if route == "statusz":
                return self._json(200, self._statusz_payload())
            if route == "sessions" and method == "POST":
                return self._create_session(raw_body)
            if route == "sessions":
                return self._json(
                    200, {"sessions": sorted(self._manager.ids())}
                )
            assert session_id is not None
            if route == "session" and method == "DELETE":
                if not self._manager.remove(session_id):
                    raise UnknownSessionError(session_id)
                return self._json(200, {"deleted": session_id})
            if route == "session":
                return self._session_info(session_id)
            if route == "ask":
                return self._ask(
                    session_id, raw_body, arrived_at, idempotency_key
                )
            if route == "feedback":
                return self._feedback(
                    session_id, raw_body, arrived_at, idempotency_key
                )
            if route == "transcript":
                return self._transcript(session_id)
            raise ProtocolError(404, "not_found", "no such route")
        except ProtocolError as error:
            headers = {}
            if error.status == 503 and error.code == "draining":
                # Point retries past the drain grace: by then this
                # replica is gone and the balancer has moved on.
                headers["Retry-After"] = _retry_after_header(
                    DEFAULT_DRAIN_GRACE
                )
            return self._json(error.status, error.payload(), headers)
        except UnknownSessionError as error:
            return self._json(
                404,
                error_payload(
                    "unknown_session",
                    str(error),
                    session_id=error.session_id,
                ),
            )
        except SessionLimitError as error:
            return self._json(503, error_payload("capacity", str(error)))
        except OverloadError as error:
            # Per-tenant flooding is the caller's fault (429); global
            # capacity, deadlines, and drain are the server's (503).
            status = 429 if error.reason == "tenant_overloaded" else 503
            retry_after = error.retry_after_s
            if retry_after is None:
                # Batcher sheds (draining/queue_full) carry no hint of
                # their own; drain points past the grace, a full queue
                # turns over within a coalescer round.
                retry_after = (
                    DEFAULT_DRAIN_GRACE
                    if error.reason == "draining"
                    else 1.0
                )
            return self._json(
                status,
                error_payload(error.reason, str(error), retryable=True),
                {"Retry-After": _retry_after_header(retry_after)},
            )
        except CircuitOpenError as error:
            return self._json(
                503, error_payload("circuit_open", str(error))
            )
        except LLMError as error:
            return self._json(
                502,
                error_payload(
                    "llm_unavailable",
                    f"{type(error).__name__}: {error}",
                ),
            )
        except ReproError as error:
            return self._json(
                409,
                error_payload(
                    "conflict", f"{type(error).__name__}: {error}"
                ),
            )
        except Exception as error:  # noqa: BLE001 - last-resort 500
            obs.count("serve.internal_errors")
            return self._json(
                500,
                error_payload(
                    "internal", f"{type(error).__name__}: {error}"
                ),
            )

    @staticmethod
    def _json(
        status: int, payload: dict, headers: Optional[dict] = None
    ) -> Tuple[int, str, bytes, dict]:
        return status, JSON, json_encode(payload), dict(headers or {})

    # -- route handlers ---------------------------------------------------------------

    def _health_payload(self) -> dict:
        stats = self._manager.stats()
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "databases": len(self._catalog),
            "sessions": stats,
        }

    def _ready_payload(self) -> Tuple[bool, dict]:
        """Readiness: drain state, shed-gate saturation, breaker states.

        Not ready while draining (load balancers should stop routing
        here). Open breakers and gate stats are reported for operators but
        do not flip readiness: one failing tenant must not eject the
        server from rotation for everyone else.
        """
        ready = not self._draining
        payload = {
            "ready": ready,
            "draining": self._draining,
            "inflight": self._inflight,
            "gate": self._gate.stats(),
            "batch_queue_depth": self._batch_queue_depth(),
            "breakers": self._breaker_states(),
        }
        if self._pool is not None:
            # Backend health is operator information, like breakers: even
            # an all-ejected pool must not flip readiness — requests fail
            # fast with 503 circuit_open while probes work on readmission.
            payload["backends"] = self._pool.health_snapshot()
        return ready, payload

    def _batch_queue_depth(self) -> int:
        """Prompts waiting in tenant coalescer queues, summed."""
        with self._tenant_lock:
            models = list(self._tenant_llms.values())
        return sum(
            model.queued
            for model in models
            if isinstance(model, (BatchingChatModel, LoopBatchingChatModel))
        )

    def _statusz_payload(self) -> dict:
        """The live-operations view ``fisql-repro top`` renders."""
        payload = {
            "ready": not self._draining,
            "draining": self._draining,
            "protocol": PROTOCOL_VERSION,
            "sessions": self._manager.stats(),
            "gate": self._gate.stats(),
            "batch_queue_depth": self._batch_queue_depth(),
            "breakers": self._breaker_states(),
            "telemetry": self._telemetry.snapshot(),
        }
        if self._pool is not None:
            payload["backends"] = self._pool.health_snapshot()
        if self._semcache is not None:
            payload["semcache"] = self._semcache.statusz_view()
        if self._loop_health is not None:
            payload["loop"] = self._loop_health()
        return payload

    def _breaker_states(self) -> dict[str, str]:
        with self._tenant_lock:
            models = dict(self._tenant_llms)
        states: dict[str, str] = {}
        for tenant, model in models.items():
            stack = model
            if isinstance(stack, (BatchingChatModel, LoopBatchingChatModel)):
                stack = stack.inner
            breaker = getattr(stack, "breaker", None)
            if breaker is not None:
                states[tenant] = breaker.state
        return states

    def _metrics_text(self) -> str:
        """Prometheus text exposition: run-report metrics (when the obs
        switch is on) folded with the always-on telemetry hub. Valid
        exposition even with observability disabled — ``fisql_serve_up``
        is always present, so scrapers never choke on a prose fallback."""
        snapshot = obs.snapshot() if obs.is_enabled() else None
        backends = (
            self._pool.health_snapshot() if self._pool is not None else None
        )
        loop = self._loop_health() if self._loop_health is not None else None
        return render_prometheus(
            snapshot, self._telemetry.snapshot(), backends=backends, loop=loop
        )

    def _create_session(self, raw_body: bytes) -> Tuple[int, str, bytes]:
        request = CreateSessionRequest.from_payload(json_decode(raw_body))
        entry = self._catalog.get(request.db)
        if entry is None:
            raise ProtocolError(
                404,
                "unknown_database",
                f"no hosted database {request.db!r}",
                {"db": request.db},
            )
        llm = self.llm_for_tenant(request.tenant)

        def chat_factory() -> ChatSession:
            model = Nl2SqlModel(llm=llm, retriever=entry.retriever)
            return ChatSession(
                entry.database,
                model,
                llm=llm,
                routing=request.routing,
                semcache=self._semcache,
                tenant=request.tenant,
            )

        record = self._manager.create(
            chat_factory,
            tenant=request.tenant,
            db_id=request.db,
            resume_id=request.resume,
        )
        payload = {"session": self._session_view(record)}
        if request.resume is not None:
            payload["restored"] = True
        return self._json(201, payload)

    @staticmethod
    def _session_view(record: SessionRecord) -> dict:
        return {
            "id": record.session_id,
            "db": record.db_id,
            "tenant": record.tenant,
            "turns": len(record.chat.turns),
        }

    def _session_info(self, session_id: str) -> Tuple[int, str, bytes]:
        with self._manager.acquire(session_id) as record:
            return self._json(200, {"session": self._session_view(record)})

    def _peek_tenant(self, session_id: str) -> str:
        """The tenant for shed accounting (without blocking on the session)."""
        tenant = self._manager.peek_tenant(session_id)
        if tenant is None:
            raise UnknownSessionError(session_id)
        return tenant

    def _replay(
        self, record: SessionRecord, key: str, route: str
    ) -> Optional[Tuple[int, str, bytes, dict]]:
        """The stored response for a seen key, or None on first sight.

        Replays serve the original bytes — same status, same body — so a
        retry is indistinguishable from the first response except for the
        ``Idempotency-Replayed`` marker header, and neither the chat state
        nor the journal moves a second time.
        """
        entry = record.idempotency.lookup(key)
        if entry is None:
            return None
        obs.count("serve.idempotent_replays", route=route)
        obs.event(
            "serve.idempotent_replay",
            session=record.session_id,
            route=route,
            key=key,
        )
        return (
            entry["status"],
            JSON,
            entry["body"].encode("utf-8"),
            {"Idempotency-Replayed": "true"},
        )

    def _ask(
        self,
        session_id: str,
        raw_body: bytes,
        arrived_at: float,
        idempotency_key: Optional[str] = None,
    ) -> Tuple[int, str, bytes]:
        request = AskRequest.from_payload(json_decode(raw_body))
        with self._gate.admit(self._peek_tenant(session_id)):
            with self._manager.acquire(session_id) as record:
                if idempotency_key is not None:
                    replay = self._replay(record, idempotency_key, "ask")
                    if replay is not None:
                        return replay
                # The session lock can queue us behind a slow turn; shed
                # rather than start work the caller stopped waiting for.
                self._gate.check_deadline(arrived_at)
                response = record.chat.ask(request.question)
                obs.count("serve.asks", tenant=record.tenant)
                self._journal_turn(record, "ask")
                result = self._json(
                    200,
                    {
                        "session_id": record.session_id,
                        "answer": answer_view(response),
                        "turns": len(record.chat.turns),
                    },
                )
                if idempotency_key is not None:
                    record.idempotency.store(
                        idempotency_key, "ask", result[0], result[2]
                    )
                return result

    def _feedback(
        self,
        session_id: str,
        raw_body: bytes,
        arrived_at: float,
        idempotency_key: Optional[str] = None,
    ) -> Tuple[int, str, bytes]:
        request = FeedbackRequest.from_payload(json_decode(raw_body))
        with self._gate.admit(self._peek_tenant(session_id)):
            with self._manager.acquire(session_id) as record:
                if idempotency_key is not None:
                    replay = self._replay(record, idempotency_key, "feedback")
                    if replay is not None:
                        return replay
                self._gate.check_deadline(arrived_at)
                if record.chat.current_sql is None:
                    raise ProtocolError(
                        409,
                        "no_question",
                        "feedback before any question was asked",
                    )
                response = record.chat.give_feedback(
                    request.feedback, highlight=request.highlight
                )
                obs.count("serve.feedbacks", tenant=record.tenant)
                self._journal_turn(record, "feedback")
                result = self._json(
                    200,
                    {
                        "session_id": record.session_id,
                        "answer": answer_view(response),
                        "turns": len(record.chat.turns),
                    },
                )
                if idempotency_key is not None:
                    record.idempotency.store(
                        idempotency_key, "feedback", result[0], result[2]
                    )
                return result

    def _journal_turn(self, record: SessionRecord, route: str) -> None:
        """Durably record one completed turn (when serving with a journal).

        The append runs inside the request context, so the journal line
        carries the request's correlation id.
        """
        if self._journal is None:
            return
        turns = len(record.chat.turns)
        self._journal.append(
            f"serve.turn/{record.session_id}/{turns}",
            "serve.turn",
            {
                "session": record.session_id,
                "tenant": record.tenant,
                "route": route,
                "turns": turns,
            },
        )

    def _transcript(self, session_id: str) -> Tuple[int, str, bytes]:
        with self._manager.acquire(session_id) as record:
            return self._json(
                200,
                {
                    "session": self._session_view(record),
                    "turns": [turn_view(t) for t in record.chat.turns],
                    "transcript": record.chat.transcript(),
                },
            )


# -- HTTP layer --------------------------------------------------------------------


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin shim: read the body, delegate to the app, write the reply.

    Transport defenses live here, before the app sees a byte:

    * **Read deadline** — when the server carries ``read_timeout_ms``,
      the socket gets that timeout. A slow-loris peer that trickles its
      header bytes is cut off by ``handle_one_request``'s own timeout
      handling; one that stalls mid-body gets a 408 and the connection
      is closed.
    * **Body cap** — a ``Content-Length`` beyond ``max_body_bytes`` is
      refused with 413 *without reading the body*; a malformed or
      negative one is a 400 (it used to be silently treated as zero,
      which diverged from the async transport's parser).
    * **Torn body** — a peer that closes mid-body yields a short read;
      that is a 400, never a half-request handed to the app.
    """

    protocol_version = "HTTP/1.1"
    server_version = "fisql-serve"

    def setup(self) -> None:
        timeout_ms = getattr(self.server, "read_timeout_ms", None)
        if timeout_ms is not None:
            self.timeout = timeout_ms / 1000.0
        super().setup()

    def _reject(self, status: int, code: str, message: str) -> None:
        """Refuse at the transport layer, mirroring the app's error JSON."""
        obs.count("serve.transport.rejected", reason=code)
        body = json_encode(error_payload(code, message))
        # The request body was not (fully) consumed: the connection's
        # framing is unknown, so it must not be reused.
        self.close_connection = True
        try:
            self.send_response(status)
            self.send_header("Content-Type", JSON)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            pass  # peer already gone; nothing to tell them

    def _dispatch(self) -> None:
        length_header = self.headers.get("Content-Length")
        length = 0
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                length = -1
            if length < 0:
                self._reject(
                    400,
                    "bad_content_length",
                    f"malformed Content-Length: {length_header!r}",
                )
                return
        limit = getattr(self.server, "max_body_bytes", None)
        if limit is None:
            limit = DEFAULT_MAX_BODY_BYTES
        if length > limit:
            self._reject(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{limit}-byte limit",
            )
            return
        try:
            raw = self.rfile.read(length) if length > 0 else b""
        except (TimeoutError, socket.timeout):
            self._reject(
                408, "read_timeout", "timed out reading the request body"
            )
            return
        if len(raw) < length:
            self._reject(
                400,
                "incomplete_body",
                f"connection closed after {len(raw)} of {length} body bytes",
            )
            return
        status, ctype, body, extra_headers = self.server.app.handle_request(
            self.command, self.path, raw, headers=dict(self.headers.items())
        )
        try:
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            for name, value in extra_headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except OSError:
            self.close_connection = True

    do_GET = _dispatch
    do_POST = _dispatch
    do_DELETE = _dispatch

    def log_message(self, *_args) -> None:  # default stderr chatter off
        pass


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        app: ServeApp,
        read_timeout_ms: Optional[float] = None,
        max_body_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.app = app
        self.read_timeout_ms = read_timeout_ms
        self.max_body_bytes = max_body_bytes

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_in_thread(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 0,
    read_timeout_ms: Optional[float] = None,
    max_body_bytes: Optional[int] = None,
):
    """Bind and serve on a daemon thread; returns ``(server, thread)``."""
    server = ServeHTTPServer(
        (host, port),
        app,
        read_timeout_ms=read_timeout_ms,
        max_body_bytes=max_body_bytes,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="fisql-serve", daemon=True
    )
    thread.start()
    return server, thread


def run_server(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    drain_grace: float = DEFAULT_DRAIN_GRACE,
    install_signals: bool = True,
    read_timeout_ms: Optional[float] = None,
    max_body_bytes: Optional[int] = None,
) -> int:
    """Serve until SIGINT/SIGTERM, then drain gracefully and exit 0."""
    server = ServeHTTPServer(
        (host, port),
        app,
        read_timeout_ms=read_timeout_ms,
        max_body_bytes=max_body_bytes,
    )

    def _shutdown() -> None:
        app.begin_drain()
        app.await_idle(timeout=drain_grace)
        server.shutdown()

    def _on_signal(_signum, _frame) -> None:
        threading.Thread(target=_shutdown, daemon=True).start()

    if install_signals and threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _on_signal)
        signal.signal(signal.SIGTERM, _on_signal)

    print(
        f"fisql-serve listening on http://{host}:{server.port} "
        f"({len(app.databases)} databases hosted)"
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    stats = app.manager.stats()
    print(
        "fisql-serve drained: "
        f"{stats['created']} sessions served, {stats['resident']} resident"
    )
    return 0
