"""The FISQL session server: JSON-over-HTTP on the stdlib, no deps.

Two layers:

* :class:`ServeApp` — the transport-independent request handler. It owns
  the database catalog, the :class:`~repro.serve.sessions.SessionManager`,
  and one resilience stack *per tenant*; ``handle()`` maps
  ``(method, path, body)`` to ``(status, content-type, body bytes)``.
  Tests and the in-process client transport call it directly, so every
  behaviour is exercisable without binding a port.
* :class:`ServeHTTPServer` — a ``ThreadingHTTPServer`` whose handler is a
  thin shim over ``app.handle``; one OS thread per in-flight request.

Routes::

    POST   /sessions                  open a session        -> 201
    GET    /sessions                  list resident ids     -> 200
    GET    /sessions/{id}             session info          -> 200
    DELETE /sessions/{id}             close a session       -> 200
    POST   /sessions/{id}/ask         fresh question        -> 200
    POST   /sessions/{id}/feedback    feedback on answer    -> 200
    GET    /sessions/{id}/transcript  full conversation     -> 200
    GET    /healthz                   liveness + residency  -> 200
    GET    /readyz                    readiness + breakers  -> 200/503
    GET    /metrics                   obs run report (text) -> 200

**Tenant isolation.** Each tenant gets its own
:class:`~repro.resilience.ResilientChatModel` (retry/deadline) around the
shared base model, with a *private* circuit breaker: a failing tenant's
breaker trips to 503 ``circuit_open`` while every other tenant keeps
completing — one noisy tenant cannot starve the rest.

**Graceful drain.** ``begin_drain()`` flips the app into drain mode: new
mutating requests are refused with 503 ``draining`` (``/healthz`` reports
``"draining"``), in-flight requests run to completion, and
``await_idle()`` blocks until the last one finishes. ``run_server``
wires SIGINT/SIGTERM to exactly that sequence before closing the socket.
"""

from __future__ import annotations

import re
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from repro import obs
from repro.core.chat import ChatSession
from repro.core.nl2sql import Nl2SqlModel
from repro.core.retrieval import DemonstrationRetriever
from repro.errors import CircuitOpenError, LLMError, OverloadError, ReproError
from repro.llm.dispatch import BatchingChatModel
from repro.serve.overload import LoadShedGate
from repro.llm.interface import ChatModel
from repro.llm.simulated import SimulatedLLM
from repro.obs.reporting import render_run_report
from repro.resilience import CircuitBreaker, ResilientChatModel, RetryPolicy
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    AskRequest,
    CreateSessionRequest,
    FeedbackRequest,
    ProtocolError,
    answer_view,
    error_payload,
    json_decode,
    json_encode,
    turn_view,
)
from repro.serve.sessions import (
    SessionLimitError,
    SessionManager,
    SessionRecord,
    UnknownSessionError,
)
from repro.sql.engine import Database

JSON = "application/json"
TEXT = "text/plain; charset=utf-8"

#: Seconds ``run_server`` waits for in-flight requests after a signal.
DEFAULT_DRAIN_GRACE = 10.0


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant resilience + dispatch configuration (one stack each).

    ``batch_max > 1`` puts a bounded-wait request coalescer in front of the
    tenant's resilience stack: concurrent asks from that tenant's sessions
    are grouped into one ``complete_batch`` dispatch, waiting at most
    ``batch_wait_ms`` to fill a batch; ``batch_max_queue`` bounds that
    coalescer's queue (backpressure instead of unbounded buffering).

    The overload knobs feed the app's :class:`LoadShedGate`:
    ``max_inflight_total``/``max_inflight_per_tenant`` cap concurrent
    LLM-bound requests (503 ``overloaded`` / 429 ``tenant_overloaded``),
    and ``request_deadline_ms`` sheds requests that queued too long behind
    a busy session (503 ``deadline_exceeded``).
    """

    max_retries: int = 2
    deadline_ms: Optional[float] = None
    breaker_threshold: int = 5
    breaker_reset_ms: float = 30_000.0
    batch_max: int = 1
    batch_wait_ms: float = 5.0
    batch_max_queue: Optional[int] = None
    max_inflight_total: Optional[int] = None
    max_inflight_per_tenant: Optional[int] = None
    request_deadline_ms: Optional[float] = None


@dataclass
class CatalogEntry:
    """One hosted database plus the demo retriever its sessions share."""

    database: Database
    retriever: Optional[DemonstrationRetriever] = None


class ServeApp:
    """Transport-independent request handling for the session server."""

    def __init__(
        self,
        catalog: dict[str, CatalogEntry],
        llm: Optional[ChatModel] = None,
        manager: Optional[SessionManager] = None,
        policy: TenantPolicy = TenantPolicy(),
        llm_factory: Optional[Callable[[str], ChatModel]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not catalog:
            raise ValueError("catalog must host at least one database")
        self._catalog = dict(catalog)
        self._base_llm = llm or SimulatedLLM()
        # `manager or ...` would discard an *empty* manager (len() == 0
        # makes it falsy); test for None explicitly.
        self._manager = manager if manager is not None else SessionManager()
        self._policy = policy
        self._llm_factory = llm_factory or self._default_llm_factory
        self._clock = clock
        self._tenant_llms: dict[str, ChatModel] = {}
        self._tenant_lock = threading.Lock()
        self._gate = LoadShedGate(
            max_inflight=policy.max_inflight_total,
            max_inflight_per_tenant=policy.max_inflight_per_tenant,
            deadline_ms=policy.request_deadline_ms,
            clock=clock,
        )
        self._draining = False
        self._inflight = 0
        self._idle = threading.Condition()

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_context(cls, context, **kwargs) -> "ServeApp":
        """Host every database of an experiment context.

        SPIDER databases share the SPIDER train-pool retriever, AEP
        databases the in-house demo retriever — the same RAG stacks the
        batch experiments use, preloaded once and shared read-only by
        every session.
        """
        catalog: dict[str, CatalogEntry] = {}
        spider_retriever = context.spider_assistant_model().retriever
        for db_id, database in context.spider.benchmark.databases.items():
            catalog[db_id] = CatalogEntry(database, spider_retriever)
        aep_retriever = context.aep_assistant_model().retriever
        for db_id, database in context.aep_benchmark.databases.items():
            catalog.setdefault(db_id, CatalogEntry(database, aep_retriever))
        kwargs.setdefault("llm", context.llm)
        return cls(catalog, **kwargs)

    @property
    def manager(self) -> SessionManager:
        return self._manager

    @property
    def databases(self) -> list[str]:
        return sorted(self._catalog)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def gate(self) -> LoadShedGate:
        return self._gate

    # -- tenant isolation -----------------------------------------------------------

    def _default_llm_factory(self, tenant: str) -> ChatModel:
        policy = self._policy
        resilient = ResilientChatModel(
            self._base_llm,
            retry=RetryPolicy(
                max_retries=policy.max_retries,
                deadline_ms=policy.deadline_ms,
            ),
            breaker=CircuitBreaker(
                failure_threshold=policy.breaker_threshold,
                reset_after_ms=policy.breaker_reset_ms,
                clock=self._clock,
            ),
            clock=self._clock,
        )
        if policy.batch_max <= 1:
            return resilient
        return BatchingChatModel(
            resilient,
            max_batch=policy.batch_max,
            max_wait_ms=policy.batch_wait_ms,
            max_queue=policy.batch_max_queue,
        )

    def llm_for_tenant(self, tenant: str) -> ChatModel:
        """The tenant's resilience stack (created on first use)."""
        with self._tenant_lock:
            if tenant not in self._tenant_llms:
                self._tenant_llms[tenant] = self._llm_factory(tenant)
                obs.count("serve.tenants.created")
            return self._tenant_llms[tenant]

    # -- drain ----------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting mutating requests; in-flight ones complete.

        Tenant batchers are drained too: enqueued prompts settle, new ones
        are shed — a coalescer must not keep buffering work the route
        layer already refuses.
        """
        self._draining = True
        with self._tenant_lock:
            models = list(self._tenant_llms.values())
        for model in models:
            if isinstance(model, BatchingChatModel):
                model.begin_drain()
        obs.count("serve.drain.begun")

    def await_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is in flight; False on timeout."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    # -- dispatch ---------------------------------------------------------------------

    _ROUTES = [
        (re.compile(r"^/healthz$"), "healthz", {"GET"}),
        (re.compile(r"^/readyz$"), "readyz", {"GET"}),
        (re.compile(r"^/metrics$"), "metrics", {"GET"}),
        (re.compile(r"^/sessions$"), "sessions", {"GET", "POST"}),
        (re.compile(r"^/sessions/([^/]+)$"), "session", {"GET", "DELETE"}),
        (re.compile(r"^/sessions/([^/]+)/ask$"), "ask", {"POST"}),
        (re.compile(r"^/sessions/([^/]+)/feedback$"), "feedback", {"POST"}),
        (
            re.compile(r"^/sessions/([^/]+)/transcript$"),
            "transcript",
            {"GET"},
        ),
    ]

    def handle(
        self, method: str, path: str, raw_body: bytes = b""
    ) -> Tuple[int, str, bytes]:
        """One request in, ``(status, content_type, body_bytes)`` out."""
        arrived_at = self._clock()
        route, session_id, allowed = self._match(path)
        with self._idle:
            self._inflight += 1
        try:
            with obs.span("serve.request", route=route, method=method) as sp:
                with obs.timer("serve.latency_ms", route=route):
                    status, ctype, body = self._dispatch(
                        route, allowed, method, session_id, raw_body, arrived_at
                    )
                sp.set("status", status)
            obs.count("serve.requests", route=route, status=status)
            return status, ctype, body
        finally:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    def _match(self, path: str):
        for pattern, route, allowed in self._ROUTES:
            match = pattern.match(path)
            if match:
                groups = match.groups()
                return route, (groups[0] if groups else None), allowed
        return "unknown", None, set()

    def _dispatch(
        self,
        route: str,
        allowed: set,
        method: str,
        session_id: Optional[str],
        raw_body: bytes,
        arrived_at: float,
    ) -> Tuple[int, str, bytes]:
        try:
            if route == "unknown":
                raise ProtocolError(404, "not_found", "no such route")
            if method not in allowed:
                raise ProtocolError(
                    405,
                    "method_not_allowed",
                    f"{method} not allowed here",
                    {"allowed": sorted(allowed)},
                )
            if self._draining and method in ("POST", "DELETE"):
                raise ProtocolError(
                    503,
                    "draining",
                    "server is draining; not accepting new work",
                )
            if route == "healthz":
                return self._json(200, self._health_payload())
            if route == "readyz":
                ready, payload = self._ready_payload()
                return self._json(200 if ready else 503, payload)
            if route == "metrics":
                return 200, TEXT, self._metrics_text().encode("utf-8")
            if route == "sessions" and method == "POST":
                return self._create_session(raw_body)
            if route == "sessions":
                return self._json(
                    200, {"sessions": sorted(self._manager.ids())}
                )
            assert session_id is not None
            if route == "session" and method == "DELETE":
                if not self._manager.remove(session_id):
                    raise UnknownSessionError(session_id)
                return self._json(200, {"deleted": session_id})
            if route == "session":
                return self._session_info(session_id)
            if route == "ask":
                return self._ask(session_id, raw_body, arrived_at)
            if route == "feedback":
                return self._feedback(session_id, raw_body, arrived_at)
            if route == "transcript":
                return self._transcript(session_id)
            raise ProtocolError(404, "not_found", "no such route")
        except ProtocolError as error:
            return self._json(error.status, error.payload())
        except UnknownSessionError as error:
            return self._json(
                404,
                error_payload(
                    "unknown_session",
                    str(error),
                    session_id=error.session_id,
                ),
            )
        except SessionLimitError as error:
            return self._json(503, error_payload("capacity", str(error)))
        except OverloadError as error:
            # Per-tenant flooding is the caller's fault (429); global
            # capacity, deadlines, and drain are the server's (503).
            status = 429 if error.reason == "tenant_overloaded" else 503
            return self._json(
                status,
                error_payload(error.reason, str(error), retryable=True),
            )
        except CircuitOpenError as error:
            return self._json(
                503, error_payload("circuit_open", str(error))
            )
        except LLMError as error:
            return self._json(
                502,
                error_payload(
                    "llm_unavailable",
                    f"{type(error).__name__}: {error}",
                ),
            )
        except ReproError as error:
            return self._json(
                409,
                error_payload(
                    "conflict", f"{type(error).__name__}: {error}"
                ),
            )
        except Exception as error:  # noqa: BLE001 - last-resort 500
            obs.count("serve.internal_errors")
            return self._json(
                500,
                error_payload(
                    "internal", f"{type(error).__name__}: {error}"
                ),
            )

    @staticmethod
    def _json(status: int, payload: dict) -> Tuple[int, str, bytes]:
        return status, JSON, json_encode(payload)

    # -- route handlers ---------------------------------------------------------------

    def _health_payload(self) -> dict:
        stats = self._manager.stats()
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "databases": len(self._catalog),
            "sessions": stats,
        }

    def _ready_payload(self) -> Tuple[bool, dict]:
        """Readiness: drain state, shed-gate saturation, breaker states.

        Not ready while draining (load balancers should stop routing
        here). Open breakers and gate stats are reported for operators but
        do not flip readiness: one failing tenant must not eject the
        server from rotation for everyone else.
        """
        ready = not self._draining
        return ready, {
            "ready": ready,
            "draining": self._draining,
            "inflight": self._inflight,
            "gate": self._gate.stats(),
            "breakers": self._breaker_states(),
        }

    def _breaker_states(self) -> dict[str, str]:
        with self._tenant_lock:
            models = dict(self._tenant_llms)
        states: dict[str, str] = {}
        for tenant, model in models.items():
            stack = model
            if isinstance(stack, BatchingChatModel):
                stack = stack.inner
            breaker = getattr(stack, "breaker", None)
            if breaker is not None:
                states[tenant] = breaker.state
        return states

    def _metrics_text(self) -> str:
        if not obs.is_enabled():
            return (
                "(observability disabled; start the server with "
                "instrumentation to populate /metrics)\n"
            )
        return render_run_report(obs.snapshot()) + "\n"

    def _create_session(self, raw_body: bytes) -> Tuple[int, str, bytes]:
        request = CreateSessionRequest.from_payload(json_decode(raw_body))
        entry = self._catalog.get(request.db)
        if entry is None:
            raise ProtocolError(
                404,
                "unknown_database",
                f"no hosted database {request.db!r}",
                {"db": request.db},
            )
        llm = self.llm_for_tenant(request.tenant)

        def chat_factory() -> ChatSession:
            model = Nl2SqlModel(llm=llm, retriever=entry.retriever)
            return ChatSession(
                entry.database, model, llm=llm, routing=request.routing
            )

        record = self._manager.create(
            chat_factory,
            tenant=request.tenant,
            db_id=request.db,
            resume_id=request.resume,
        )
        payload = {"session": self._session_view(record)}
        if request.resume is not None:
            payload["restored"] = True
        return self._json(201, payload)

    @staticmethod
    def _session_view(record: SessionRecord) -> dict:
        return {
            "id": record.session_id,
            "db": record.db_id,
            "tenant": record.tenant,
            "turns": len(record.chat.turns),
        }

    def _session_info(self, session_id: str) -> Tuple[int, str, bytes]:
        with self._manager.acquire(session_id) as record:
            return self._json(200, {"session": self._session_view(record)})

    def _peek_tenant(self, session_id: str) -> str:
        """The tenant for shed accounting (without blocking on the session)."""
        tenant = self._manager.peek_tenant(session_id)
        if tenant is None:
            raise UnknownSessionError(session_id)
        return tenant

    def _ask(
        self, session_id: str, raw_body: bytes, arrived_at: float
    ) -> Tuple[int, str, bytes]:
        request = AskRequest.from_payload(json_decode(raw_body))
        with self._gate.admit(self._peek_tenant(session_id)):
            with self._manager.acquire(session_id) as record:
                # The session lock can queue us behind a slow turn; shed
                # rather than start work the caller stopped waiting for.
                self._gate.check_deadline(arrived_at)
                response = record.chat.ask(request.question)
                obs.count("serve.asks", tenant=record.tenant)
                return self._json(
                    200,
                    {
                        "session_id": record.session_id,
                        "answer": answer_view(response),
                        "turns": len(record.chat.turns),
                    },
                )

    def _feedback(
        self, session_id: str, raw_body: bytes, arrived_at: float
    ) -> Tuple[int, str, bytes]:
        request = FeedbackRequest.from_payload(json_decode(raw_body))
        with self._gate.admit(self._peek_tenant(session_id)):
            with self._manager.acquire(session_id) as record:
                self._gate.check_deadline(arrived_at)
                if record.chat.current_sql is None:
                    raise ProtocolError(
                        409,
                        "no_question",
                        "feedback before any question was asked",
                    )
                response = record.chat.give_feedback(
                    request.feedback, highlight=request.highlight
                )
                obs.count("serve.feedbacks", tenant=record.tenant)
                return self._json(
                    200,
                    {
                        "session_id": record.session_id,
                        "answer": answer_view(response),
                        "turns": len(record.chat.turns),
                    },
                )

    def _transcript(self, session_id: str) -> Tuple[int, str, bytes]:
        with self._manager.acquire(session_id) as record:
            return self._json(
                200,
                {
                    "session": self._session_view(record),
                    "turns": [turn_view(t) for t in record.chat.turns],
                    "transcript": record.chat.transcript(),
                },
            )


# -- HTTP layer --------------------------------------------------------------------


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin shim: read the body, delegate to the app, write the reply."""

    protocol_version = "HTTP/1.1"
    server_version = "fisql-serve"

    def _dispatch(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        status, ctype, body = self.server.app.handle(
            self.command, self.path, raw
        )
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _dispatch
    do_POST = _dispatch
    do_DELETE = _dispatch

    def log_message(self, *_args) -> None:  # default stderr chatter off
        pass


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], app: ServeApp) -> None:
        super().__init__(address, _RequestHandler)
        self.app = app

    @property
    def port(self) -> int:
        return self.server_address[1]


def start_in_thread(app: ServeApp, host: str = "127.0.0.1", port: int = 0):
    """Bind and serve on a daemon thread; returns ``(server, thread)``."""
    server = ServeHTTPServer((host, port), app)
    thread = threading.Thread(
        target=server.serve_forever, name="fisql-serve", daemon=True
    )
    thread.start()
    return server, thread


def run_server(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    drain_grace: float = DEFAULT_DRAIN_GRACE,
    install_signals: bool = True,
) -> int:
    """Serve until SIGINT/SIGTERM, then drain gracefully and exit 0."""
    server = ServeHTTPServer((host, port), app)

    def _shutdown() -> None:
        app.begin_drain()
        app.await_idle(timeout=drain_grace)
        server.shutdown()

    def _on_signal(_signum, _frame) -> None:
        threading.Thread(target=_shutdown, daemon=True).start()

    if install_signals and threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGINT, _on_signal)
        signal.signal(signal.SIGTERM, _on_signal)

    print(
        f"fisql-serve listening on http://{host}:{server.port} "
        f"({len(app.databases)} databases hosted)"
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    stats = app.manager.stats()
    print(
        "fisql-serve drained: "
        f"{stats['created']} sessions served, {stats['resident']} resident"
    )
    return 0
