"""The serve wire protocol: typed requests/responses + canonical JSON.

Every body on the wire is a JSON object. Requests are validated into
frozen dataclasses (unknown fields, missing fields, and wrong types all
become a structured 400 — :class:`ProtocolError` carries the HTTP status
and a machine-readable ``code``). Responses are built through the
``*_view`` helpers and serialized with :func:`json_encode`, which is
*canonical* (sorted keys, compact separators): the same payload always
produces the same bytes, which is what lets the parity tests compare the
HTTP surface against the in-process pipeline byte-for-byte.

Error payload shape (all non-2xx responses)::

    {"error": {"code": "unknown_session", "message": "...", ...detail}}
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Optional

from repro.core.assistant import AssistantResponse
from repro.core.chat import ChatTurn
from repro.errors import ReproError

#: Bump when a request/response shape changes.
PROTOCOL_VERSION = 1

#: Longest caller-supplied ``X-Request-Id`` the server will honor.
MAX_REQUEST_ID_LENGTH = 128

_REQUEST_ID_OK = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:/-]*$")

_MISSING = object()


def normalize_request_id(value: Optional[str]) -> Optional[str]:
    """A caller's ``X-Request-Id``, accepted or rejected.

    Returns the trimmed id when it is well-formed (bounded length, safe
    charset — it ends up in logs, metric labels, and journal records), or
    ``None`` so the server mints its own instead of propagating garbage.
    """
    if value is None:
        return None
    value = value.strip()
    if not value or len(value) > MAX_REQUEST_ID_LENGTH:
        return None
    if not _REQUEST_ID_OK.match(value):
        return None
    return value


#: Longest ``Idempotency-Key`` the server will track per session.
MAX_IDEMPOTENCY_KEY_LENGTH = 128


def normalize_idempotency_key(value: str) -> str:
    """A caller's ``Idempotency-Key``, accepted or refused with a 400.

    Unlike a malformed request id — which the server silently replaces,
    because correlation is best-effort — a malformed idempotency key
    must be an error: silently ignoring it would hand the caller
    at-least-once semantics while they believe they have exactly-once.
    """
    trimmed = value.strip()
    if (
        not trimmed
        or len(trimmed) > MAX_IDEMPOTENCY_KEY_LENGTH
        or not _REQUEST_ID_OK.match(trimmed)
    ):
        raise ProtocolError(
            400,
            "bad_idempotency_key",
            "Idempotency-Key must be 1-"
            f"{MAX_IDEMPOTENCY_KEY_LENGTH} chars of [A-Za-z0-9._:/-] "
            "starting with an alphanumeric",
        )
    return trimmed


class ProtocolError(ReproError):
    """A request the server refuses, with an HTTP status and error code."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        detail: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = dict(detail or {})

    def payload(self) -> dict:
        """The structured error body sent on the wire."""
        error = {"code": self.code, "message": self.message}
        error.update(self.detail)
        return {"error": error}


# -- JSON codec --------------------------------------------------------------------


def json_encode(payload: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, compact, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def json_decode(raw: bytes) -> dict:
    """Parse a request body; anything but a JSON object is a 400."""
    if not raw:
        raise ProtocolError(400, "invalid_json", "request body is empty")
    try:
        parsed = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            400, "invalid_json", f"request body is not valid JSON: {exc}"
        ) from exc
    if not isinstance(parsed, dict):
        raise ProtocolError(
            400,
            "invalid_json",
            f"request body must be a JSON object, got {type(parsed).__name__}",
        )
    return parsed


# -- request validation ------------------------------------------------------------


def _validate(payload: dict, fields: dict) -> dict:
    """Check ``payload`` against ``fields`` ({name: (types, default)}).

    A default of ``_MISSING`` marks the field required. Returns the
    validated value map; raises :class:`ProtocolError` (400) otherwise.
    """
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise ProtocolError(
            400,
            "invalid_request",
            f"unknown field(s): {', '.join(unknown)}",
            {"fields": unknown},
        )
    values = {}
    for name, (types, default) in fields.items():
        if name not in payload:
            if default is _MISSING:
                raise ProtocolError(
                    400,
                    "invalid_request",
                    f"missing required field {name!r}",
                    {"field": name},
                )
            values[name] = default
            continue
        value = payload[name]
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in _as_tuple(types)
        ):
            expected = "/".join(t.__name__ for t in _as_tuple(types))
            raise ProtocolError(
                400,
                "invalid_request",
                f"field {name!r} must be {expected}, "
                f"got {type(value).__name__}",
                {"field": name},
            )
        values[name] = value
    return values


def _as_tuple(types) -> tuple:
    return types if isinstance(types, tuple) else (types,)


def _non_empty(value: str, name: str) -> str:
    if not value.strip():
        raise ProtocolError(
            400,
            "invalid_request",
            f"field {name!r} must not be empty",
            {"field": name},
        )
    return value


@dataclass(frozen=True)
class CreateSessionRequest:
    """``POST /sessions`` — open a chat session against a hosted database.

    ``resume`` names a previously evicted session id: its persisted
    transcript is restored and the session keeps that id.
    """

    db: str
    tenant: str = "default"
    routing: bool = True
    resume: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: dict) -> "CreateSessionRequest":
        values = _validate(
            payload,
            {
                "db": (str, _MISSING),
                "tenant": (str, "default"),
                "routing": (bool, True),
                "resume": ((str, type(None)), None),
            },
        )
        _non_empty(values["db"], "db")
        _non_empty(values["tenant"], "tenant")
        if values["resume"] is not None:
            _non_empty(values["resume"], "resume")
        return cls(**values)


@dataclass(frozen=True)
class AskRequest:
    """``POST /sessions/{id}/ask`` — a fresh natural-language question."""

    question: str

    @classmethod
    def from_payload(cls, payload: dict) -> "AskRequest":
        values = _validate(payload, {"question": (str, _MISSING)})
        _non_empty(values["question"], "question")
        return cls(**values)


@dataclass(frozen=True)
class FeedbackRequest:
    """``POST /sessions/{id}/feedback`` — feedback on the last answer."""

    feedback: str
    highlight: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: dict) -> "FeedbackRequest":
        values = _validate(
            payload,
            {
                "feedback": (str, _MISSING),
                "highlight": ((str, type(None)), None),
            },
        )
        _non_empty(values["feedback"], "feedback")
        return cls(**values)


# -- response views ----------------------------------------------------------------


def answer_view(response: AssistantResponse) -> dict:
    """The four-part assistant response as a wire payload.

    Mirrors what the tool shows a user: execution result, reformulation,
    explanation, and the SQL behind 'Show Source' — plus the rendered chat
    bubble and the error line when the SQL failed.
    """
    result = None
    if response.result is not None:
        result = {
            "columns": list(response.result.columns),
            "rows": [list(row) for row in response.result.rows],
        }
    return {
        "sql": response.sql,
        "text": response.render(),
        "result": result,
        "result_text": response.result_text(),
        "reformulation": response.reformulation,
        "explanation": response.explanation,
        "error": response.error,
    }


def turn_view(turn: ChatTurn) -> dict:
    """One chat turn as a wire payload."""
    return {
        "role": turn.role,
        "text": turn.text,
        "sql": turn.sql,
        "highlight": turn.highlight,
    }


def error_payload(code: str, message: str, **detail: object) -> dict:
    """An error body outside the :class:`ProtocolError` path."""
    error: dict = {"code": code, "message": message}
    error.update(detail)
    return {"error": error}
