"""Asyncio transport for the session server: the GIL-friendly front door.

The threaded transport (:class:`~repro.serve.server.ServeHTTPServer`)
spends one OS thread per connection; under thousands of mostly-idle
keep-alive connections that is thousands of stacks parked on
``socket.recv``. This module serves the *same* :class:`ServeApp` — same
routes, same bytes, same correlation-id semantics — from a single
``asyncio`` event loop:

* **Connections live on the loop.** ``asyncio.start_server`` plus a
  minimal HTTP/1.1 parser (request line, headers, ``Content-Length``
  body, keep-alive until ``Connection: close`` or EOF). Ten thousand
  idle connections cost ten thousand small buffers, not threads.
* **App work never blocks the loop.** ``ServeApp.handle_request`` is
  synchronous and LLM-bound, so it is dispatched to a bounded request
  executor via ``run_in_executor``; the loop keeps accepting, parsing,
  and replying while workers grind.
* **Saturation is shed on the loop.** When the executor backlog exceeds
  ``max_pending``, LLM-bound posts (``ask``/``feedback``) are refused
  *before* consuming a worker thread — through
  :meth:`LoadShedGate.shed`, so transport sheds land in the same
  counters and ``/statusz`` surfaces as app-level sheds. Health probes
  and reads are never shed here: they must stay cheap for balancers.
* **Batching coalesces by loop tick.** The server calls
  :meth:`ServeApp.enable_loop_batching`, so per-tenant coalescers are
  :class:`~repro.llm.dispatch.LoopBatchingChatModel` — queueing on the
  loop (no cross-thread condition waits) and dispatching batches on a
  separate executor so request workers never deadlock behind their own
  batch.
* **Hostile peers are bounded.** ``Content-Length`` is checked against
  ``max_body_bytes`` *before* the body allocation (413), malformed or
  negative lengths are a 400, and with ``read_timeout_ms`` set every
  read — head or body — carries a deadline, so a slow-loris peer gets a
  408 instead of a parked coroutine holding buffers forever.
* **The loop watches itself.** :class:`LoopHealth` measures scheduling
  lag by sleep overshoot; the snapshot feeds ``/statusz`` (``"loop"``
  section) and the ``fisql_serve_loop_lag_ms`` /
  ``fisql_serve_executor_queue`` gauges on ``/metrics``.

Drain semantics match the threaded transport: SIGINT/SIGTERM stops
admission (``ServeApp.begin_drain``), in-flight requests finish within
``drain_grace`` seconds, then the listener closes and the same
"fisql-serve drained" line prints.
"""

from __future__ import annotations

import asyncio
import functools
import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _HTTP_REASONS
from typing import Callable, Optional

from repro import obs
from repro.serve.protocol import error_payload, json_encode
from repro.serve.server import (
    DEFAULT_DRAIN_GRACE,
    DEFAULT_MAX_BODY_BYTES,
    JSON,
    ServeApp,
    _retry_after_header,
)

#: Default size of the request executor (concurrent app dispatches).
DEFAULT_ASYNC_WORKERS = 8

#: Seconds between loop-lag probes.
_HEALTH_INTERVAL_S = 0.25

#: Seconds of lag history kept for the "max" gauge.
_HEALTH_WINDOW_S = 60.0


class LoopHealth:
    """Event-loop scheduling lag, measured by sleep overshoot.

    A coroutine sleeps ``interval_s`` and records how late it woke up:
    on an unblocked loop the overshoot is microseconds; a handler that
    stalls the loop for 80ms shows up as an ~80ms spike. ``snapshot``
    is thread-safe — ``/statusz`` and ``/metrics`` render from executor
    threads.
    """

    def __init__(
        self,
        interval_s: float = _HEALTH_INTERVAL_S,
        window_s: float = _HEALTH_WINDOW_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._interval = interval_s
        self._window = window_s
        self._clock = clock
        self._lock = threading.Lock()
        self._last_lag_ms = 0.0
        self._peaks: deque = deque()  # (monotonic stamp, lag_ms)
        self._ticks = 0
        self._task: Optional[asyncio.Task] = None

    def start(self, loop: asyncio.AbstractEventLoop) -> None:
        self._task = loop.create_task(self._run(), name="fisql-loop-health")

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    async def _run(self) -> None:
        while True:
            before = self._clock()
            await asyncio.sleep(self._interval)
            lag_ms = max(
                0.0, (self._clock() - before - self._interval) * 1000.0
            )
            self._record(lag_ms)

    def _record(self, lag_ms: float) -> None:
        now = self._clock()
        with self._lock:
            self._ticks += 1
            self._last_lag_ms = lag_ms
            self._peaks.append((now, lag_ms))
            horizon = now - self._window
            while self._peaks and self._peaks[0][0] < horizon:
                self._peaks.popleft()

    def snapshot(self) -> dict:
        with self._lock:
            peak = max((lag for _stamp, lag in self._peaks), default=0.0)
            return {
                "loop_lag_ms": round(self._last_lag_ms, 3),
                "loop_lag_max_ms": round(peak, 3),
                "ticks": self._ticks,
            }


class AsyncServeServer:
    """One :class:`ServeApp` behind an ``asyncio.start_server`` listener.

    ``workers`` bounds concurrent app dispatches; up to ``max_pending``
    further LLM-bound requests may queue behind them before the
    transport sheds (``executor_saturated``). Construct, then ``await
    start()`` from a running loop; ``await stop()`` closes the listener
    and both executors.
    """

    def __init__(
        self,
        app: ServeApp,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = DEFAULT_ASYNC_WORKERS,
        max_pending: Optional[int] = None,
        read_timeout_ms: Optional[float] = None,
        max_body_bytes: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if max_pending is not None and max_pending < 0:
            raise ValueError(f"max_pending must be >= 0: {max_pending}")
        if read_timeout_ms is not None and read_timeout_ms <= 0:
            raise ValueError(f"read_timeout_ms must be > 0: {read_timeout_ms}")
        if max_body_bytes is not None and max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1: {max_body_bytes}")
        self.app = app
        self.host = host
        self._port = port
        self._workers = workers
        self._max_pending = (
            workers * 4 if max_pending is None else max_pending
        )
        self._read_timeout_s = (
            None if read_timeout_ms is None else read_timeout_ms / 1000.0
        )
        self._max_body_bytes = (
            DEFAULT_MAX_BODY_BYTES if max_body_bytes is None else max_body_bytes
        )
        self._request_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="aserve"
        )
        # Batches dispatch on their own threads: a request worker waiting
        # on its batch must never be the thread the batch needs to run.
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=max(2, workers // 2), thread_name_prefix="aserve-llm"
        )
        self._health = LoopHealth()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._inflight = 0  # loop-confined writes; racy reads are fine
        self._sheds = 0
        self._conn_writers: set = set()
        self._conn_tasks: set = set()

    @property
    def port(self) -> int:
        return self._port

    # -- lifecycle --------------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        # Must precede the first tenant stack: per-tenant LLM stacks are
        # built lazily and pick their coalescer flavor at build time.
        self.app.enable_loop_batching(loop, self._dispatch_pool)
        self.app.set_loop_health(self.loop_snapshot)
        self._health.start(loop)
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        self._health.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Kick lingering keep-alive connections loose and let their
        # handler tasks finish before the loop is torn down under them.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        self._request_pool.shutdown(wait=False)
        self._dispatch_pool.shutdown(wait=False)

    def loop_snapshot(self) -> dict:
        """The ``/statusz`` "loop" section and ``/metrics`` gauge source."""
        view = self._health.snapshot()
        inflight = self._inflight
        view.update(
            {
                "transport": "async",
                "executor_workers": self._workers,
                "executor_inflight": min(inflight, self._workers),
                "executor_queue": max(0, inflight - self._workers),
                "executor_max_pending": self._max_pending,
                "sheds": self._sheds,
            }
        )
        return view

    # -- connection handling ----------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_writers.add(writer)
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    head = await self._read(reader.readuntil(b"\r\n\r\n"))
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break  # client closed (possibly mid-request)
                except asyncio.TimeoutError:
                    # Slow loris: the head never completed within the
                    # read deadline. 408 and cut the connection loose.
                    obs.count(
                        "serve.transport.rejected", reason="read_timeout"
                    )
                    await self._write_error(
                        writer,
                        408,
                        "timed out reading the request head",
                        code="read_timeout",
                    )
                    break
                except asyncio.LimitOverrunError:
                    await self._write_error(
                        writer, 431, "request header section too large"
                    )
                    break
                parsed = _parse_head(head)
                if parsed is None:
                    await self._write_error(
                        writer, 400, "malformed HTTP request"
                    )
                    break
                method, path, headers = parsed
                raw_length = headers.get("content-length")
                try:
                    length = int(raw_length or 0)
                except ValueError:
                    length = -1
                if length < 0:
                    obs.count(
                        "serve.transport.rejected", reason="bad_content_length"
                    )
                    await self._write_error(
                        writer,
                        400,
                        f"bad Content-Length: {raw_length!r}",
                        code="bad_content_length",
                    )
                    break
                if length > self._max_body_bytes:
                    # Refused before the allocation: Content-Length is
                    # attacker-controlled, readexactly(length) is not.
                    obs.count(
                        "serve.transport.rejected", reason="body_too_large"
                    )
                    await self._write_error(
                        writer,
                        413,
                        f"request body of {length} bytes exceeds the "
                        f"{self._max_body_bytes}-byte limit",
                        code="body_too_large",
                    )
                    break
                body = b""
                if length > 0:
                    try:
                        body = await self._read(reader.readexactly(length))
                    except asyncio.IncompleteReadError:
                        break
                    except asyncio.TimeoutError:
                        obs.count(
                            "serve.transport.rejected", reason="read_timeout"
                        )
                        await self._write_error(
                            writer,
                            408,
                            "timed out reading the request body",
                            code="read_timeout",
                        )
                        break
                await self._respond(writer, method, path, body, headers)
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read(self, read_coro):
        """One read operation, bounded by the per-read deadline (if any)."""
        if self._read_timeout_s is None:
            return await read_coro
        return await asyncio.wait_for(read_coro, self._read_timeout_s)

    def _saturated(self, method: str, path: str) -> bool:
        if self._inflight < self._workers + self._max_pending:
            return False
        return method == "POST" and (
            path.endswith("/ask") or path.endswith("/feedback")
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
        headers: dict,
    ) -> None:
        if self._saturated(method, path):
            # Refused on the loop, before a worker slot is consumed —
            # but counted in the app's gate like any other shed.
            self._sheds += 1
            error = self.app.gate.shed(
                "executor_saturated",
                f"async transport backlog is full ({self._inflight} "
                "requests queued or running); retry shortly",
            )
            await self._write(
                writer,
                503,
                JSON,
                json_encode(
                    error_payload(error.reason, str(error), retryable=True)
                ),
                {
                    "Retry-After": _retry_after_header(
                        error.retry_after_s or 1.0
                    )
                },
            )
            return
        self._inflight += 1
        try:
            status, ctype, out, extra = await self._loop.run_in_executor(
                self._request_pool,
                functools.partial(
                    self.app.handle_request,
                    method,
                    path,
                    body,
                    headers=headers,
                ),
            )
        finally:
            self._inflight -= 1
        await self._write(writer, status, ctype, out, extra)

    # -- response writing -------------------------------------------------------

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        ctype: str,
        body: bytes,
        extra_headers: Optional[dict] = None,
    ) -> None:
        reason = _HTTP_REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _write_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        message: str,
        code: str = "bad_request",
    ) -> None:
        await self._write(
            writer,
            status,
            JSON,
            json_encode(error_payload(code, message)),
            {"Connection": "close"},
        )


def _parse_head(head: bytes) -> Optional[tuple]:
    """``(method, path, lowercase-header dict)`` or None when malformed."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes anything
        return None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        return None
    method, path, _version = parts
    if not method or not path.startswith("/"):
        return None
    headers: dict = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            return None
        headers[name.strip().lower()] = value.strip()
    return method, path, headers


# -- entrypoints ---------------------------------------------------------------


async def _run_async(
    app: ServeApp,
    host: str,
    port: int,
    drain_grace: float,
    workers: int,
    max_pending: Optional[int],
    install_signals: bool,
    read_timeout_ms: Optional[float] = None,
    max_body_bytes: Optional[int] = None,
) -> int:
    server = AsyncServeServer(
        app,
        host,
        port,
        workers=workers,
        max_pending=max_pending,
        read_timeout_ms=read_timeout_ms,
        max_body_bytes=max_body_bytes,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    if install_signals:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without loop signals
    print(
        f"fisql-serve listening on http://{host}:{server.port} "
        f"({len(app.databases)} databases hosted, transport=async)"
    )
    await stop.wait()
    app.begin_drain()
    await loop.run_in_executor(None, app.await_idle, drain_grace)
    await server.stop()
    stats = app.manager.stats()
    print(
        "fisql-serve drained: "
        f"{stats['created']} sessions served, {stats['resident']} resident"
    )
    return 0


def run_async_server(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    drain_grace: float = DEFAULT_DRAIN_GRACE,
    workers: int = DEFAULT_ASYNC_WORKERS,
    max_pending: Optional[int] = None,
    install_signals: bool = True,
    read_timeout_ms: Optional[float] = None,
    max_body_bytes: Optional[int] = None,
) -> int:
    """Serve until SIGINT/SIGTERM, then drain gracefully and exit 0.

    The async counterpart of :func:`repro.serve.server.run_server` —
    same prints, same drain semantics, selected by
    ``fisql-repro serve --transport async``.
    """
    return asyncio.run(
        _run_async(
            app,
            host,
            port,
            drain_grace,
            workers,
            max_pending,
            install_signals,
            read_timeout_ms=read_timeout_ms,
            max_body_bytes=max_body_bytes,
        )
    )


class AsyncServerHandle:
    """Test-side handle for a loop running on a daemon thread."""

    def __init__(self, holder: dict, thread: threading.Thread) -> None:
        self._holder = holder
        self._thread = thread

    @property
    def server(self) -> AsyncServeServer:
        return self._holder["server"]

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        loop: asyncio.AbstractEventLoop = self._holder["loop"]
        stop: asyncio.Event = self._holder["stop"]
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            return  # loop already gone
        self._thread.join(timeout)


def start_async_in_thread(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 4,
    max_pending: Optional[int] = None,
    read_timeout_ms: Optional[float] = None,
    max_body_bytes: Optional[int] = None,
) -> AsyncServerHandle:
    """Run the async transport on a daemon thread (tests and tooling).

    Mirrors :func:`repro.serve.server.start_in_thread`: returns once the
    listener is bound; ``handle.stop()`` closes it down.
    """
    started = threading.Event()
    failure: dict = {}
    holder: dict = {}

    async def _main() -> None:
        server = AsyncServeServer(
            app,
            host,
            port,
            workers=workers,
            max_pending=max_pending,
            read_timeout_ms=read_timeout_ms,
            max_body_bytes=max_body_bytes,
        )
        await server.start()
        stop = asyncio.Event()
        holder["server"] = server
        holder["loop"] = asyncio.get_running_loop()
        holder["stop"] = stop
        started.set()
        await stop.wait()
        await server.stop()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except BaseException as error:  # surface bind failures to the caller
            failure["error"] = error
            started.set()

    thread = threading.Thread(target=_runner, name="fisql-aserve", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("async serve thread failed to start in time")
    if "error" in failure:
        raise failure["error"]
    return AsyncServerHandle(holder, thread)
