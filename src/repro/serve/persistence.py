"""Session persistence: transcripts serialized to JSON across evictions.

:class:`SessionStore` is the disk side of the ROADMAP's "session
persistence" item. When the :class:`~repro.serve.sessions.SessionManager`
evicts an idle session (TTL or LRU), the conversation state —
transcript turns, current question, current SQL — is written as one
canonical-JSON file per session id. A later ``POST /sessions`` with
``resume: <id>`` restores the conversation into a fresh
:class:`~repro.core.chat.ChatSession` and removes the file (resume is
move semantics: a session is resident *or* persisted, never both).

Files live flat in one directory, ``<session_id>.json``, schema-versioned
so stale layouts are ignored rather than mis-restored.
"""

from __future__ import annotations

import json
import os
import re
import threading
from pathlib import Path
from typing import Optional, Union

#: Bump when the persisted session layout changes.
SESSION_SCHEMA_VERSION = 1

#: Session ids must be safe as bare file names.
_SAFE_ID = re.compile(r"^[A-Za-z0-9._-]+$")


class SessionStore:
    """One-directory JSON persistence for evicted chat sessions."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.saved = 0
        self.restored = 0

    @property
    def directory(self) -> Path:
        return self._directory

    def _path_for(self, session_id: str) -> Optional[Path]:
        if not _SAFE_ID.match(session_id):
            return None
        return self._directory / f"{session_id}.json"

    def ids(self) -> list[str]:
        """Persisted session ids, sorted."""
        return sorted(
            path.stem for path in self._directory.glob("*.json")
        )

    def save(
        self, session_id: str, tenant: str, db_id: str, state: dict
    ) -> bool:
        """Persist one evicted session; False when the id is unsafe."""
        path = self._path_for(session_id)
        if path is None:
            return False
        document = {
            "version": SESSION_SCHEMA_VERSION,
            "session_id": session_id,
            "tenant": tenant,
            "db": db_id,
            "state": state,
        }
        encoded = (
            json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
        )
        with self._lock:
            tmp_path = path.with_suffix(".json.tmp")
            tmp_path.write_text(encoded, encoding="utf-8")
            os.replace(tmp_path, path)
            self.saved += 1
        return True

    def load(self, session_id: str) -> Optional[dict]:
        """The persisted document for an id (None when absent/unreadable)."""
        path = self._path_for(session_id)
        if path is None:
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(document, dict)
            or document.get("version") != SESSION_SCHEMA_VERSION
            or not isinstance(document.get("state"), dict)
        ):
            return None
        return document

    def pop(self, session_id: str) -> Optional[dict]:
        """Load and remove a persisted session (move semantics for resume)."""
        with self._lock:
            document = self.load(session_id)
            if document is not None:
                path = self._path_for(session_id)
                try:
                    assert path is not None
                    path.unlink()
                except OSError:
                    pass
                else:
                    self.restored += 1
            return document
