"""Session persistence: transcripts serialized to JSON across evictions.

:class:`SessionStore` is the disk side of the ROADMAP's "session
persistence" item. When the :class:`~repro.serve.sessions.SessionManager`
evicts an idle session (TTL or LRU), the conversation state —
transcript turns, current question, current SQL — is written as one
checksummed canonical-JSON file per session id via the shared atomic
writer (:mod:`repro.durability.atomic`): temp file + ``fsync`` +
``os.replace``, so a crash mid-save can never tear a transcript. A later
``POST /sessions`` with ``resume: <id>`` restores the conversation into a
fresh :class:`~repro.core.chat.ChatSession` and removes the file (resume
is move semantics: a session is resident *or* persisted, never both).

Files live flat in one directory, ``<session_id>.json``, schema-versioned
so stale layouts are ignored rather than mis-restored. A torn or
corrupt file is quarantined aside (``<name>.corrupt``) and treated as
absent — the loader never crashes and never half-restores.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import Optional, Union

from repro import obs
from repro.chaos.diskfaults import disk_fault
from repro.durability.atomic import (
    read_checksummed_json,
    write_checksummed_json,
)

#: Bump when the persisted session layout changes.
#: v2: the file is a checksummed envelope (see repro.durability.atomic).
SESSION_SCHEMA_VERSION = 2

#: Session ids must be safe as bare file names.
_SAFE_ID = re.compile(r"^[A-Za-z0-9._-]+$")


class SessionStore:
    """One-directory JSON persistence for evicted chat sessions."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.saved = 0
        self.restored = 0
        self.save_failures = 0

    @property
    def directory(self) -> Path:
        return self._directory

    def _path_for(self, session_id: str) -> Optional[Path]:
        if not _SAFE_ID.match(session_id):
            return None
        return self._directory / f"{session_id}.json"

    def ids(self) -> list[str]:
        """Persisted session ids, sorted."""
        return sorted(
            path.stem for path in self._directory.glob("*.json")
        )

    def save(
        self,
        session_id: str,
        tenant: str,
        db_id: str,
        state: dict,
        idempotency: Optional[list] = None,
    ) -> bool:
        """Persist one evicted session; False when the id is unsafe.

        A disk fault (full, read-only, I/O error) is absorbed rather than
        propagated: the eviction proceeds on in-memory state, the failure
        is counted as a degraded write, and False is returned. Sessions
        are independent files, so later saves retry the disk fresh.

        ``idempotency`` carries the session's replayable-response entries
        (:meth:`~repro.serve.idempotency.IdempotencyIndex.state`). The
        field is written only when non-empty, so documents from runs that
        never used ``Idempotency-Key`` stay byte-identical to older ones.
        """
        path = self._path_for(session_id)
        if path is None:
            return False
        document = {
            "version": SESSION_SCHEMA_VERSION,
            "session_id": session_id,
            "tenant": tenant,
            "db": db_id,
            "state": state,
        }
        if idempotency:
            document["idempotency"] = idempotency
        with self._lock:
            try:
                disk_fault("disk.session_save")
                write_checksummed_json(path, document)
            except OSError as error:
                self.save_failures += 1
                obs.count("durability.degraded", kind="session")
                obs.event(
                    "session.save_failed",
                    session=session_id,
                    error=f"{type(error).__name__}: {error}",
                )
                return False
            self.saved += 1
        return True

    def load(self, session_id: str) -> Optional[dict]:
        """The persisted document for an id (None when absent/unreadable).

        A file that fails its checksum — torn write, bit rot, manual edit,
        or a pre-checksum layout — is quarantined aside and reported
        absent: the session simply cannot be resumed, but the server keeps
        running and the evidence stays on disk.
        """
        path = self._path_for(session_id)
        if path is None:
            return None
        document = read_checksummed_json(path, kind="session")
        if (
            not isinstance(document, dict)
            or document.get("version") != SESSION_SCHEMA_VERSION
            or not isinstance(document.get("state"), dict)
        ):
            return None
        return document

    def pop(self, session_id: str) -> Optional[dict]:
        """Load and remove a persisted session (move semantics for resume)."""
        with self._lock:
            document = self.load(session_id)
            if document is not None:
                path = self._path_for(session_id)
                try:
                    assert path is not None
                    path.unlink()
                except OSError:
                    pass
                else:
                    self.restored += 1
            return document
