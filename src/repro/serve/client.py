"""Blocking client for the session server, plus an in-process transport.

:class:`ServeClient` speaks the protocol of :mod:`repro.serve.server`
over either transport:

* :class:`HttpTransport` — a real socket via :mod:`http.client` (one
  connection per request, so a client instance is safe to share only
  per-thread; tests create one client per worker thread).
* :class:`InProcessTransport` — calls ``ServeApp.handle`` directly. Both
  transports move the *same bytes*, which is what the parity tests rely
  on: an in-process run and a socket run of the same script produce
  byte-identical response bodies.

Non-2xx responses raise :class:`ServeClientError` carrying the HTTP
status and the structured error payload (``error.code`` et al.).
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Protocol, Tuple

from repro.errors import ReproError
from repro.serve.protocol import json_encode
from repro.serve.server import ServeApp


class ServeClientError(ReproError):
    """A non-2xx response from the server.

    ``retry_after`` carries the server's ``Retry-After`` response header
    (seconds) on shed 429/503 responses, ``None`` otherwise — callers
    with a retry loop should sleep that long before trying again.
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        code = error.get("code", "unknown")
        message = error.get("message", "request failed")
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.payload = payload
        self.retry_after = retry_after


def _retry_after_from(headers: dict) -> Optional[float]:
    """The ``Retry-After`` header as seconds (any casing; None if absent
    or malformed)."""
    for name, value in headers.items():
        if str(name).lower() == "retry-after":
            try:
                seconds = float(str(value).strip())
            except ValueError:
                return None
            return seconds if seconds >= 0 else None
    return None


class Transport(Protocol):
    """Anything that can move a request to a serve app."""

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        """Returns ``(status, body_bytes)``."""
        ...  # pragma: no cover

    def request_detailed(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        """Returns ``(status, body_bytes, response_headers)``."""
        ...  # pragma: no cover


class HttpTransport:
    """Requests over a real socket (a fresh connection per request)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout

    def request_detailed(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            sent = dict(headers or {})
            if body:
                sent.setdefault("Content-Type", "application/json")
            connection.request(method, path, body=body, headers=sent)
            response = connection.getresponse()
            return response.status, response.read(), dict(response.headers)
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        status, payload, _headers = self.request_detailed(
            method, path, body, headers
        )
        return status, payload


class InProcessTransport:
    """Requests straight into a :class:`ServeApp`, no socket."""

    def __init__(self, app: ServeApp) -> None:
        self._app = app

    def request_detailed(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        status, _ctype, payload, response_headers = self._app.handle_request(
            method, path, body or b"", headers=headers
        )
        return status, payload, response_headers

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        status, payload, _headers = self.request_detailed(
            method, path, body, headers
        )
        return status, payload


class ServeClient:
    """A small blocking client for examples, tests, and load generators."""

    def __init__(self, transport: Transport) -> None:
        self._transport = transport

    @classmethod
    def connect(
        cls, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0
    ) -> "ServeClient":
        return cls(HttpTransport(host, port, timeout=timeout))

    @classmethod
    def in_process(cls, app: ServeApp) -> "ServeClient":
        return cls(InProcessTransport(app))

    # -- raw plumbing ---------------------------------------------------------

    def request_raw(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        """The raw ``(status, body_bytes)`` — parity tests compare these."""
        body = json_encode(payload) if payload is not None else None
        return self._transport.request(method, path, body, headers)

    def request_detailed(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        """Like :meth:`request_raw`, plus the response headers (the echoed
        ``X-Request-Id`` lives there, never in the body)."""
        body = json_encode(payload) if payload is not None else None
        return self._transport.request_detailed(method, path, body, headers)

    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        status, raw, response_headers = self.request_detailed(
            method, path, payload
        )
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = {"error": {"code": "bad_body", "message": repr(raw)}}
        if status >= 400:
            raise ServeClientError(
                status, parsed, retry_after=_retry_after_from(response_headers)
            )
        return parsed

    # -- endpoints ------------------------------------------------------------------

    def create_session(
        self, db: str, tenant: str = "default", routing: bool = True
    ) -> dict:
        """Open a session; returns the session view (``id`` inside)."""
        payload = self._request(
            "POST",
            "/sessions",
            {"db": db, "tenant": tenant, "routing": routing},
        )
        return payload["session"]

    def list_sessions(self) -> list:
        return self._request("GET", "/sessions")["sessions"]

    def session_info(self, session_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}")["session"]

    def delete_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/sessions/{session_id}")

    def ask(self, session_id: str, question: str) -> dict:
        """Ask a fresh question; returns the response payload."""
        return self._request(
            "POST", f"/sessions/{session_id}/ask", {"question": question}
        )

    def feedback(
        self,
        session_id: str,
        feedback: str,
        highlight: Optional[str] = None,
    ) -> dict:
        """Send feedback on the last answer; returns the revised payload."""
        body: dict = {"feedback": feedback}
        if highlight is not None:
            body["highlight"] = highlight
        return self._request(
            "POST", f"/sessions/{session_id}/feedback", body
        )

    def transcript(self, session_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}/transcript")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def statusz(self) -> dict:
        """The live telemetry view (windowed latencies, SLOs, gate state)."""
        return self._request("GET", "/statusz")

    def metrics(self) -> str:
        """The ``/metrics`` page (Prometheus text exposition)."""
        status, raw = self.request_raw("GET", "/metrics")
        if status >= 400:
            raise ServeClientError(status, {})
        return raw.decode("utf-8")
