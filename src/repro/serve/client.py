"""Blocking client for the session server, plus an in-process transport.

:class:`ServeClient` speaks the protocol of :mod:`repro.serve.server`
over either transport:

* :class:`HttpTransport` — a real socket via :mod:`http.client` (one
  connection per request, so a client instance is safe to share only
  per-thread; tests create one client per worker thread).
* :class:`InProcessTransport` — calls ``ServeApp.handle`` directly. Both
  transports move the *same bytes*, which is what the parity tests rely
  on: an in-process run and a socket run of the same script produce
  byte-identical response bodies.

Non-2xx responses raise :class:`ServeClientError` carrying the HTTP
status and the structured error payload (``error.code`` et al.).
"""

from __future__ import annotations

import http.client
import itertools
import json
import os
import time
from typing import Callable, Optional, Protocol, Tuple

from repro.errors import ReproError
from repro.serve.protocol import json_encode
from repro.serve.server import ServeApp

#: Statuses the server sends *before* doing any work — a retry cannot
#: double-apply anything, idempotency key or not.
RETRYABLE_STATUSES = frozenset({408, 429, 503})


class ServeClientError(ReproError):
    """A non-2xx response from the server.

    ``retry_after`` carries the server's ``Retry-After`` response header
    (seconds) on shed 429/503 responses, ``None`` otherwise — callers
    with a retry loop should sleep that long before trying again.
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        code = error.get("code", "unknown")
        message = error.get("message", "request failed")
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.payload = payload
        self.retry_after = retry_after


def _retry_after_from(headers: dict) -> Optional[float]:
    """The ``Retry-After`` header as seconds (any casing; None if absent
    or malformed)."""
    for name, value in headers.items():
        if str(name).lower() == "retry-after":
            try:
                seconds = float(str(value).strip())
            except ValueError:
                return None
            return seconds if seconds >= 0 else None
    return None


class Transport(Protocol):
    """Anything that can move a request to a serve app."""

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        """Returns ``(status, body_bytes)``."""
        ...  # pragma: no cover

    def request_detailed(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        """Returns ``(status, body_bytes, response_headers)``."""
        ...  # pragma: no cover


class HttpTransport:
    """Requests over a real socket (a fresh connection per request)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 30.0
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout

    def request_detailed(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )
        try:
            sent = dict(headers or {})
            if body:
                sent.setdefault("Content-Type", "application/json")
            connection.request(method, path, body=body, headers=sent)
            response = connection.getresponse()
            return response.status, response.read(), dict(response.headers)
        finally:
            connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        status, payload, _headers = self.request_detailed(
            method, path, body, headers
        )
        return status, payload


class InProcessTransport:
    """Requests straight into a :class:`ServeApp`, no socket."""

    def __init__(self, app: ServeApp) -> None:
        self._app = app

    def request_detailed(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        status, _ctype, payload, response_headers = self._app.handle_request(
            method, path, body or b"", headers=headers
        )
        return status, payload, response_headers

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        status, payload, _headers = self.request_detailed(
            method, path, body, headers
        )
        return status, payload


def _default_key_factory() -> Callable[[], str]:
    """Idempotency keys unique across client instances and restarts."""
    counter = itertools.count(1)
    prefix = os.urandom(4).hex()

    def make() -> str:
        return f"ik-{prefix}-{next(counter):06d}"

    return make


class ServeClient:
    """A small blocking client for examples, tests, and load generators.

    With ``max_retries > 0`` the client retries safely on its own:

    * Shed responses (408/429/503) are retried for *any* request — the
      server refuses those before doing work — sleeping the server's
      ``Retry-After`` hint when present, exponential backoff otherwise.
    * Network failures (connection reset, timeout) are ambiguous: the
      turn may have been applied and only the response lost. They are
      retried only for GETs, or for mutations stamped with an
      ``Idempotency-Key`` — which :meth:`ask` and :meth:`feedback`
      generate automatically once retries are enabled, so a replayed
      retry returns the original response instead of a duplicate turn.

    At the default ``max_retries=0`` no key is ever generated and no
    sleep ever happens: request bytes and behaviour are identical to a
    client without the feature.
    """

    def __init__(
        self,
        transport: Transport,
        max_retries: int = 0,
        retry_backoff_s: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
        key_factory: Optional[Callable[[], str]] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0: {retry_backoff_s}"
            )
        self._transport = transport
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._sleep = sleep
        self._key_factory = key_factory or _default_key_factory()
        self.retries = 0

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
        max_retries: int = 0,
    ) -> "ServeClient":
        return cls(
            HttpTransport(host, port, timeout=timeout),
            max_retries=max_retries,
        )

    @classmethod
    def in_process(cls, app: ServeApp) -> "ServeClient":
        return cls(InProcessTransport(app))

    # -- raw plumbing ---------------------------------------------------------

    def request_raw(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes]:
        """The raw ``(status, body_bytes)`` — parity tests compare these."""
        body = json_encode(payload) if payload is not None else None
        return self._transport.request(method, path, body, headers)

    def request_detailed(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, bytes, dict]:
        """Like :meth:`request_raw`, plus the response headers (the echoed
        ``X-Request-Id`` lives there, never in the body)."""
        body = json_encode(payload) if payload is not None else None
        return self._transport.request_detailed(method, path, body, headers)

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        if retry_after is not None:
            return retry_after
        return self._retry_backoff_s * (2 ** (attempt - 1))

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        replay_safe = method == "GET" or bool(
            headers and "Idempotency-Key" in headers
        )
        attempt = 0
        while True:
            try:
                status, raw, response_headers = self.request_detailed(
                    method, path, payload, headers
                )
            except (
                ConnectionError,
                TimeoutError,
                http.client.HTTPException,
                OSError,
            ):
                # The request may have been applied with only the reply
                # lost — retry only when a replay cannot double-apply.
                if attempt >= self._max_retries or not replay_safe:
                    raise
                attempt += 1
                self.retries += 1
                self._sleep(self._backoff(attempt, None))
                continue
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = {"error": {"code": "bad_body", "message": repr(raw)}}
            if status >= 400:
                error = ServeClientError(
                    status,
                    parsed,
                    retry_after=_retry_after_from(response_headers),
                )
                if attempt < self._max_retries and status in RETRYABLE_STATUSES:
                    attempt += 1
                    self.retries += 1
                    self._sleep(self._backoff(attempt, error.retry_after))
                    continue
                raise error
            return parsed

    def _mutation_headers(self) -> Optional[dict]:
        """An ``Idempotency-Key`` for ask/feedback once retries are on."""
        if self._max_retries < 1:
            return None
        return {"Idempotency-Key": self._key_factory()}

    # -- endpoints ------------------------------------------------------------------

    def create_session(
        self, db: str, tenant: str = "default", routing: bool = True
    ) -> dict:
        """Open a session; returns the session view (``id`` inside)."""
        payload = self._request(
            "POST",
            "/sessions",
            {"db": db, "tenant": tenant, "routing": routing},
        )
        return payload["session"]

    def list_sessions(self) -> list:
        return self._request("GET", "/sessions")["sessions"]

    def session_info(self, session_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}")["session"]

    def delete_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/sessions/{session_id}")

    def ask(self, session_id: str, question: str) -> dict:
        """Ask a fresh question; returns the response payload."""
        return self._request(
            "POST",
            f"/sessions/{session_id}/ask",
            {"question": question},
            headers=self._mutation_headers(),
        )

    def feedback(
        self,
        session_id: str,
        feedback: str,
        highlight: Optional[str] = None,
    ) -> dict:
        """Send feedback on the last answer; returns the revised payload."""
        body: dict = {"feedback": feedback}
        if highlight is not None:
            body["highlight"] = highlight
        return self._request(
            "POST",
            f"/sessions/{session_id}/feedback",
            body,
            headers=self._mutation_headers(),
        )

    def transcript(self, session_id: str) -> dict:
        return self._request("GET", f"/sessions/{session_id}/transcript")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def statusz(self) -> dict:
        """The live telemetry view (windowed latencies, SLOs, gate state)."""
        return self._request("GET", "/statusz")

    def metrics(self) -> str:
        """The ``/metrics`` page (Prometheus text exposition)."""
        status, raw = self.request_raw("GET", "/metrics")
        if status >= 400:
            raise ServeClientError(status, {})
        return raw.decode("utf-8")
