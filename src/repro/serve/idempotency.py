"""Exactly-once turn application: per-session idempotency replay.

A client that times out on ``POST /sessions/{id}/ask`` cannot know
whether the turn was applied — the response may have died on the wire
*after* the chat state advanced and the journal line was written.
Blind retries then double-apply the turn: the transcript grows twice,
feedback lands on the wrong SQL, and the journal double-counts.

The fix is the standard one: the client stamps each mutating request
with an ``Idempotency-Key`` header, and the server remembers, per
session, the response it already produced for that key. A retry with
the same key replays the stored bytes — same status, same body — and
touches neither the chat state nor the journal.

:class:`IdempotencyIndex` is that memory. Design points:

* **Per-session, under the session lock.** Keys only need to be unique
  within one conversation, and every mutating turn already serializes
  on the per-session lock — so the index needs no lock of its own.
* **Bounded.** At most ``max_keys`` entries, FIFO: a retry storm can
  only replay recent turns, and an evicted key degrades to at-least-
  once (exactly the pre-feature behaviour), never to unbounded memory.
* **Persisted with the session.** The index travels through
  :class:`~repro.serve.persistence.SessionStore` alongside the chat
  state, so evict → resume → retry still deduplicates.
* **Success-only.** Only 2xx responses are recorded: a 503 or 429 must
  not be replayed at a caller who is retrying precisely to escape it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

#: Per-session replay memory: deep enough for any sane retry window,
#: small enough that 128 resident sessions stay negligible.
DEFAULT_MAX_KEYS = 64


class IdempotencyIndex:
    """Bounded key -> recorded-response map for one session."""

    def __init__(self, max_keys: int = DEFAULT_MAX_KEYS) -> None:
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1: {max_keys}")
        self._max_keys = max_keys
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.replays = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional[dict]:
        """The recorded response for a key, or None on first sight.

        A hit counts as a replay: the caller serves the stored bytes
        instead of re-running the turn.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self.replays += 1
        return entry

    def store(self, key: str, route: str, status: int, body: bytes) -> None:
        """Record the response a key produced (oldest key falls out)."""
        self._entries[key] = {
            "route": route,
            "status": status,
            "body": body.decode("utf-8"),
        }
        self._entries.move_to_end(key)
        while len(self._entries) > self._max_keys:
            self._entries.popitem(last=False)

    # -- persistence ----------------------------------------------------------

    def state(self) -> list[dict]:
        """JSON-ready entries, oldest first (insertion order preserved)."""
        return [
            dict(entry, key=key) for key, entry in self._entries.items()
        ]

    def restore(self, entries: object) -> int:
        """Reload entries saved by :meth:`state`; returns how many took.

        Tolerant by construction — a hand-edited or stale document drops
        bad entries instead of poisoning the session: replay degrades to
        at-least-once, which is where we started.
        """
        if not isinstance(entries, list):
            return 0
        restored = 0
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            key = entry.get("key")
            status = entry.get("status")
            body = entry.get("body")
            route = entry.get("route")
            if (
                isinstance(key, str)
                and isinstance(status, int)
                and isinstance(body, str)
                and isinstance(route, str)
            ):
                self.store(key, route, status, body.encode("utf-8"))
                restored += 1
        return restored
