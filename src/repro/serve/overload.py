"""Load shedding for the session server: queue-depth caps and deadlines.

A synchronous threading server degrades badly under overload: every
request gets a thread, every thread contends for session locks and the
LLM, and *all* of them get slow together. :class:`LoadShedGate` keeps the
server honest by refusing work it cannot serve promptly:

* a **global inflight cap** — more than ``max_inflight`` LLM-bound
  requests in flight sheds the newcomer with a 503-shaped
  :class:`~repro.errors.OverloadError` (``overloaded``);
* a **per-tenant inflight cap** — one tenant flooding asks is shed with a
  429-shaped error (``tenant_overloaded``) while other tenants keep
  being admitted: queue-depth isolation, the admission-side complement of
  the per-tenant circuit breakers;
* a **request deadline** — a request that already waited longer than
  ``deadline_ms`` behind a busy session sheds (``deadline_exceeded``)
  instead of doing work whose caller has likely given up.

Shed decisions are O(1) counter checks under one lock; every shed counts
``serve.shed`` labelled by reason.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro import obs
from repro.errors import OverloadError


class LoadShedGate:
    """Admission control over concurrent LLM-bound requests."""

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        max_inflight_per_tenant: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        for name, value in (
            ("max_inflight", max_inflight),
            ("max_inflight_per_tenant", max_inflight_per_tenant),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1: {value}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0: {deadline_ms}")
        self._max_inflight = max_inflight
        self._max_per_tenant = max_inflight_per_tenant
        self._deadline_ms = deadline_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = 0
        self._per_tenant: dict[str, int] = {}
        self.admitted = 0
        self.shed_total = 0
        self.shed_by_reason: dict[str, int] = {}

    # -- introspection --------------------------------------------------------

    @property
    def deadline_ms(self) -> Optional[float]:
        return self._deadline_ms

    def inflight(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is None:
                return self._inflight
            return self._per_tenant.get(tenant, 0)

    def stats(self) -> dict:
        with self._lock:
            utilization = (
                round(self._inflight / self._max_inflight, 4)
                if self._max_inflight
                else None
            )
            return {
                "inflight": self._inflight,
                "inflight_per_tenant": dict(sorted(self._per_tenant.items())),
                "max_inflight": self._max_inflight,
                "max_inflight_per_tenant": self._max_per_tenant,
                "utilization": utilization,
                "deadline_ms": self._deadline_ms,
                "admitted": self.admitted,
                "shed": dict(self.shed_by_reason),
            }

    def retry_after_s(self, reason: str) -> float:
        """The client-backoff hint attached to a shed (``Retry-After``).

        Capacity sheds point at the request deadline when one is
        configured — by then the queue that shed you has turned over —
        and fall back to one second. A request shed *for* overstaying its
        deadline gets the one-second floor: its slot is already free.
        """
        if reason != "deadline_exceeded" and self._deadline_ms is not None:
            return max(1.0, self._deadline_ms / 1000.0)
        return 1.0

    # -- admission ------------------------------------------------------------

    def _shed_locked(self, reason: str, message: str) -> OverloadError:
        self.shed_total += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        obs.count("serve.shed", reason=reason)
        return OverloadError(
            message, reason=reason, retry_after_s=self.retry_after_s(reason)
        )

    def shed(self, reason: str, message: str) -> OverloadError:
        """Count and build a shed error for a transport-level refusal.

        The async transport refuses LLM-bound work on the event loop when
        its executor backlog is full — before the request ever consumes a
        worker thread — but the shed still belongs in this gate's
        counters and ``/readyz``/``/statusz`` surfaces.
        """
        with self._lock:
            return self._shed_locked(reason, message)

    @contextmanager
    def admit(self, tenant: str) -> Iterator[None]:
        """Hold one inflight slot for a tenant's LLM-bound request.

        Raises :class:`OverloadError` instead of entering when a cap is
        hit — the caller never queues behind the overload it would add to.
        """
        with self._lock:
            if (
                self._max_inflight is not None
                and self._inflight >= self._max_inflight
            ):
                raise self._shed_locked(
                    "overloaded",
                    f"server is at capacity ({self._max_inflight} requests "
                    "in flight); retry shortly",
                )
            tenant_inflight = self._per_tenant.get(tenant, 0)
            if (
                self._max_per_tenant is not None
                and tenant_inflight >= self._max_per_tenant
            ):
                raise self._shed_locked(
                    "tenant_overloaded",
                    f"tenant {tenant!r} already has {tenant_inflight} "
                    "requests in flight; slow down",
                )
            self._inflight += 1
            self._per_tenant[tenant] = tenant_inflight + 1
            self.admitted += 1
        try:
            yield
        finally:
            with self._lock:
                self._inflight -= 1
                remaining = self._per_tenant.get(tenant, 1) - 1
                if remaining <= 0:
                    self._per_tenant.pop(tenant, None)
                else:
                    self._per_tenant[tenant] = remaining

    def check_deadline(self, arrived_at: float) -> None:
        """Shed a request that already overstayed its deadline.

        Called after potentially-blocking waits (the per-session lock):
        a request that queued past ``deadline_ms`` is abandoned before the
        expensive LLM work, not after.
        """
        if self._deadline_ms is None:
            return
        elapsed_ms = (self._clock() - arrived_at) * 1000.0
        if elapsed_ms > self._deadline_ms:
            with self._lock:
                raise self._shed_locked(
                    "deadline_exceeded",
                    f"request waited {elapsed_ms:.0f}ms, past its "
                    f"{self._deadline_ms:.0f}ms deadline",
                )
