"""``repro.serve`` — the concurrent interactive-correction session server.

The paper's FISQL is a deployed chat tool, not a batch script: users ask,
read the four-part response, and reply with feedback, live. This package
is that serving layer for the reproduction — a zero-dependency
JSON-over-HTTP service hosting many concurrent
:class:`~repro.core.chat.ChatSession`'s over shared, preloaded database
contexts, instrumented with :mod:`repro.obs` and isolated per tenant via
:mod:`repro.resilience` policies.

Layers:

* :mod:`repro.serve.protocol` — typed request/response payloads, the
  canonical JSON codec, and structured error payloads.
* :mod:`repro.serve.sessions` — thread-safe session registry with
  per-session locks, TTL + LRU eviction, and a max-sessions gate.
* :mod:`repro.serve.server`  — the routes, per-tenant resilience stacks,
  graceful drain, and the stdlib ``ThreadingHTTPServer`` binding.
* :mod:`repro.serve.aserver` — the ``asyncio`` transport: one event loop
  owns the sockets, a bounded executor runs the app, and loop health is
  exported to ``/statusz`` and ``/metrics``.
* :mod:`repro.serve.client`  — a blocking client over a real socket or an
  in-process transport (same bytes either way).

Start one from the CLI with ``fisql-repro serve`` or in code::

    from repro.serve import ServeApp, ServeClient, start_in_thread

    app = ServeApp.from_context(build_context(scale="small"))
    server, _ = start_in_thread(app)
    client = ServeClient.connect(port=server.port)
    session = client.create_session(db="aep")
    client.ask(session["id"], "How many audiences were created in January?")
    client.feedback(session["id"], "we are in 2024")
"""

from repro.serve.aserver import (
    DEFAULT_ASYNC_WORKERS,
    AsyncServeServer,
    LoopHealth,
    run_async_server,
    start_async_in_thread,
)
from repro.serve.client import (
    HttpTransport,
    InProcessTransport,
    ServeClient,
    ServeClientError,
)
from repro.serve.idempotency import IdempotencyIndex
from repro.serve.persistence import SESSION_SCHEMA_VERSION, SessionStore
from repro.serve.protocol import (
    MAX_IDEMPOTENCY_KEY_LENGTH,
    MAX_REQUEST_ID_LENGTH,
    PROTOCOL_VERSION,
    AskRequest,
    CreateSessionRequest,
    FeedbackRequest,
    ProtocolError,
    answer_view,
    error_payload,
    json_decode,
    json_encode,
    normalize_idempotency_key,
    normalize_request_id,
    turn_view,
)
from repro.serve.server import (
    DEFAULT_DRAIN_GRACE,
    CatalogEntry,
    ServeApp,
    ServeHTTPServer,
    TenantPolicy,
    run_server,
    start_in_thread,
)
from repro.serve.overload import LoadShedGate
from repro.serve.sessions import (
    DEFAULT_MAX_SESSIONS,
    SessionError,
    SessionLimitError,
    SessionManager,
    SessionRecord,
    UnknownSessionError,
)

__all__ = [
    "DEFAULT_ASYNC_WORKERS",
    "DEFAULT_DRAIN_GRACE",
    "DEFAULT_MAX_SESSIONS",
    "PROTOCOL_VERSION",
    "AskRequest",
    "AsyncServeServer",
    "CatalogEntry",
    "CreateSessionRequest",
    "FeedbackRequest",
    "HttpTransport",
    "IdempotencyIndex",
    "InProcessTransport",
    "LoadShedGate",
    "LoopHealth",
    "MAX_IDEMPOTENCY_KEY_LENGTH",
    "MAX_REQUEST_ID_LENGTH",
    "ProtocolError",
    "SESSION_SCHEMA_VERSION",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeHTTPServer",
    "SessionError",
    "SessionLimitError",
    "SessionManager",
    "SessionRecord",
    "SessionStore",
    "TenantPolicy",
    "UnknownSessionError",
    "answer_view",
    "error_payload",
    "json_decode",
    "json_encode",
    "normalize_idempotency_key",
    "normalize_request_id",
    "run_async_server",
    "run_server",
    "start_async_in_thread",
    "start_in_thread",
    "turn_view",
]
