"""FISQL reproduction: feedback-infused SQL generation.

An offline, from-scratch reproduction of *FISQL: Enhancing Text-to-SQL
Systems with Rich Interactive Feedback* (EDBT 2025): an in-memory SQL
engine, synthetic SPIDER-like and Experience-Platform-like benchmarks, a
simulated GPT-class NL2SQL model with realistic failure modes, and the
FISQL interactive correction pipeline with routing and highlights.

Quickstart::

    from repro import build_context, run_table2, render_table2

    context = build_context(scale="small")
    print(render_table2(run_table2(context)))
"""

from repro import obs
from repro.core import (
    Assistant,
    AssistantResponse,
    Feedback,
    FeedbackDemoStore,
    FisqlPipeline,
    Nl2SqlModel,
    QueryRewriteBaseline,
    SimulatedAnnotator,
)
from repro.datasets import (
    Benchmark,
    Example,
    build_aep_database,
    generate_aep_suite,
    generate_spider_suite,
)
from repro.eval import (
    build_context,
    render_figure2,
    render_figure8,
    render_table2,
    render_table3,
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.llm import SimulatedLLM
from repro.sql import Database

__version__ = "1.0.0"

__all__ = [
    "Assistant",
    "AssistantResponse",
    "Benchmark",
    "Database",
    "Example",
    "Feedback",
    "FeedbackDemoStore",
    "FisqlPipeline",
    "Nl2SqlModel",
    "QueryRewriteBaseline",
    "SimulatedAnnotator",
    "SimulatedLLM",
    "build_aep_database",
    "build_context",
    "generate_aep_suite",
    "generate_spider_suite",
    "obs",
    "render_figure2",
    "render_figure8",
    "render_table2",
    "render_table3",
    "run_figure2",
    "run_figure8",
    "run_table2",
    "run_table3",
    "__version__",
]
