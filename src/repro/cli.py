"""Command-line entry point: regenerate any of the paper's artifacts.

Usage::

    fisql-repro figure2 --scale medium
    fisql-repro table2  --scale full --metrics
    fisql-repro figure8
    fisql-repro table3
    fisql-repro all --scale small --trace /tmp/fisql-trace.jsonl
    fisql-repro table2 --scale small --inject-faults default --metrics
    python -m repro.cli all

Scales: ``small`` (seconds), ``medium`` (default), ``full`` (the paper's
sizes: 200 databases, 1034 dev questions).

``--metrics`` prints a run report (span/latency/routing/correction
summaries) after the artifacts; ``--trace PATH`` writes the full JSONL
span + metric export (schema in :mod:`repro.obs.export`). With neither
flag the instrumentation stays in no-op mode.

``--inject-faults PROFILE`` runs the whole experiment against a seeded
deterministic chaos harness (:mod:`repro.resilience`); ``--llm-retries``
and ``--llm-timeout`` tune the retry/deadline policy of the resilient
wrapper that absorbs those faults. Backoff waits run on a virtual clock,
so chaos runs take no extra wall-clock time.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro import obs
from repro.eval.experiments import (
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.eval.harness import SCALES, build_context
from repro.eval.reporting import (
    render_figure2,
    render_figure2_chart,
    render_figure8,
    render_figure8_chart,
    render_table2,
    render_table3,
)
from repro.llm.interface import ChatModel
from repro.llm.simulated import SimulatedLLM
from repro.obs.reporting import render_run_report
from repro.resilience import (
    CircuitBreaker,
    FaultInjectingChatModel,
    ResilientChatModel,
    RetryPolicy,
    VirtualClock,
    resolve_fault_profile,
)

#: Default retry budget when resilience flags are active.
DEFAULT_LLM_RETRIES = 2

_ARTIFACTS = {
    "figure2": (run_figure2, render_figure2),
    "table2": (run_table2, render_table2),
    "figure8": (run_figure8, render_figure8),
    "table3": (run_table3, render_table3),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the requested experiment(s) and print the paper-format output."""
    parser = argparse.ArgumentParser(
        prog="fisql-repro",
        description="Regenerate the FISQL paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="medium",
        help="experiment scale (full = the paper's sizes; default: medium)",
    )
    parser.add_argument(
        "--seed", type=int, default=20250325, help="generator seed"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figures as ASCII bar charts instead of tables",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print an observability run report after the artifacts",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL span/metric trace of the run to PATH",
    )
    parser.add_argument(
        "--inject-faults",
        metavar="PROFILE",
        help=(
            "chaos-test the run: perturb LLM calls with a seeded "
            "deterministic fault profile (named: none, default, flaky, "
            "outage; or a spec like 'timeout=0.1,empty=0.05')"
        ),
    )
    parser.add_argument(
        "--llm-retries",
        type=int,
        metavar="N",
        help=(
            "retries for transient LLM failures "
            f"(default {DEFAULT_LLM_RETRIES} when resilience is active)"
        ),
    )
    parser.add_argument(
        "--llm-timeout",
        type=float,
        metavar="MS",
        help="per-call deadline budget in ms across retries and backoff",
    )
    args = parser.parse_args(argv)

    try:
        llm = _build_llm(args)
    except ValueError as error:
        parser.error(str(error))

    trace_preexisting = False
    if args.trace is not None:
        # Fail before the (possibly minutes-long) run, not at export time.
        # Probe in append mode: an existing trace must not be truncated by
        # the preflight — the run may still fail and the old trace is the
        # only one the user has.
        trace_preexisting = os.path.exists(args.trace)
        try:
            with open(args.trace, "a", encoding="utf-8"):
                pass
        except OSError as error:
            parser.error(f"cannot write trace file {args.trace!r}: {error}")

    instrumented = args.metrics or args.trace is not None
    if instrumented:
        obs.enable()

    try:
        context = build_context(scale=args.scale, seed=args.seed, llm=llm)
        chart_renderers = {
            "figure2": render_figure2_chart,
            "figure8": render_figure8_chart,
        }
        names = (
            sorted(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
        )
        for index, name in enumerate(names):
            if index:
                print()
            runner, renderer = _ARTIFACTS[name]
            if args.chart and name in chart_renderers:
                renderer = chart_renderers[name]
            with obs.span(f"experiment.{name}", scale=args.scale):
                result = runner(context)
            print(renderer(result))

        if args.trace is not None:
            lines = obs.export_jsonl(args.trace)
            print(f"\n[obs] wrote {lines} trace lines to {args.trace}")
        if args.metrics:
            print()
            print(render_run_report(obs.snapshot()))
    except BaseException:
        if args.trace is not None and not trace_preexisting:
            _remove_empty_stub(args.trace)
        raise
    finally:
        if instrumented:
            obs.disable()
    return 0


def _build_llm(args: argparse.Namespace) -> Optional[ChatModel]:
    """The chat-model stack for this run; None keeps the cached default.

    Only assembled when a resilience flag is present, so plain runs stay
    byte-identical to the unwrapped pipeline.
    """
    if (
        args.inject_faults is None
        and args.llm_retries is None
        and args.llm_timeout is None
    ):
        return None
    llm: ChatModel = SimulatedLLM()
    if args.inject_faults is not None:
        profile = resolve_fault_profile(args.inject_faults, seed=args.seed)
        llm = FaultInjectingChatModel(llm, profile)
    retries = (
        args.llm_retries if args.llm_retries is not None else DEFAULT_LLM_RETRIES
    )
    if args.llm_timeout is not None and args.llm_timeout <= 0:
        raise ValueError(f"--llm-timeout must be > 0 ms: {args.llm_timeout}")
    # 1 ms of virtual latency per clock reading stands in for per-call
    # wall time, so an open breaker's cooldown elapses with call traffic.
    clock = VirtualClock(tick=0.001)
    return ResilientChatModel(
        llm,
        retry=RetryPolicy(
            max_retries=retries,
            deadline_ms=args.llm_timeout,
            seed=args.seed,
        ),
        breaker=CircuitBreaker(reset_after_ms=250.0, clock=clock.now),
        clock=clock.now,
        sleep=clock.sleep,
    )


def _remove_empty_stub(path: str) -> None:
    """Drop the preflight-created trace file if the run never filled it."""
    try:
        if os.path.exists(path) and os.path.getsize(path) == 0:
            os.remove(path)
    except OSError:
        pass


if __name__ == "__main__":
    sys.exit(main())
