"""Command-line entry point: regenerate any of the paper's artifacts.

Usage::

    fisql-repro figure2 --scale medium
    fisql-repro table2  --scale full
    fisql-repro figure8
    fisql-repro table3
    fisql-repro all --scale small
    python -m repro.cli all

Scales: ``small`` (seconds), ``medium`` (default), ``full`` (the paper's
sizes: 200 databases, 1034 dev questions).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.eval.experiments import (
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.eval.harness import build_context
from repro.eval.reporting import (
    render_figure2,
    render_figure2_chart,
    render_figure8,
    render_figure8_chart,
    render_table2,
    render_table3,
)

_ARTIFACTS = {
    "figure2": (run_figure2, render_figure2),
    "table2": (run_table2, render_table2),
    "figure8": (run_figure8, render_figure8),
    "table3": (run_table3, render_table3),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the requested experiment(s) and print the paper-format output."""
    parser = argparse.ArgumentParser(
        prog="fisql-repro",
        description="Regenerate the FISQL paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "full"),
        default="medium",
        help="experiment scale (full = the paper's sizes; default: medium)",
    )
    parser.add_argument(
        "--seed", type=int, default=20250325, help="generator seed"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figures as ASCII bar charts instead of tables",
    )
    args = parser.parse_args(argv)

    context = build_context(scale=args.scale, seed=args.seed)
    chart_renderers = {
        "figure2": render_figure2_chart,
        "figure8": render_figure8_chart,
    }
    names = sorted(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for index, name in enumerate(names):
        if index:
            print()
        runner, renderer = _ARTIFACTS[name]
        if args.chart and name in chart_renderers:
            renderer = chart_renderers[name]
        print(renderer(runner(context)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
