"""Command-line entry point: regenerate any of the paper's artifacts.

Usage::

    fisql-repro figure2 --scale medium
    fisql-repro table2  --scale full --metrics
    fisql-repro figure8
    fisql-repro table3
    fisql-repro all --scale small --trace /tmp/fisql-trace.jsonl
    python -m repro.cli all

Scales: ``small`` (seconds), ``medium`` (default), ``full`` (the paper's
sizes: 200 databases, 1034 dev questions).

``--metrics`` prints a run report (span/latency/routing/correction
summaries) after the artifacts; ``--trace PATH`` writes the full JSONL
span + metric export (schema in :mod:`repro.obs.export`). With neither
flag the instrumentation stays in no-op mode.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import obs
from repro.eval.experiments import (
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.eval.harness import SCALES, build_context
from repro.eval.reporting import (
    render_figure2,
    render_figure2_chart,
    render_figure8,
    render_figure8_chart,
    render_table2,
    render_table3,
)
from repro.obs.reporting import render_run_report

_ARTIFACTS = {
    "figure2": (run_figure2, render_figure2),
    "table2": (run_table2, render_table2),
    "figure8": (run_figure8, render_figure8),
    "table3": (run_table3, render_table3),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the requested experiment(s) and print the paper-format output."""
    parser = argparse.ArgumentParser(
        prog="fisql-repro",
        description="Regenerate the FISQL paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="medium",
        help="experiment scale (full = the paper's sizes; default: medium)",
    )
    parser.add_argument(
        "--seed", type=int, default=20250325, help="generator seed"
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render figures as ASCII bar charts instead of tables",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print an observability run report after the artifacts",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL span/metric trace of the run to PATH",
    )
    args = parser.parse_args(argv)

    if args.trace is not None:
        # Fail before the (possibly minutes-long) run, not at export time.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as error:
            parser.error(f"cannot write trace file {args.trace!r}: {error}")

    instrumented = args.metrics or args.trace is not None
    if instrumented:
        obs.enable()

    context = build_context(scale=args.scale, seed=args.seed)
    chart_renderers = {
        "figure2": render_figure2_chart,
        "figure8": render_figure8_chart,
    }
    names = sorted(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for index, name in enumerate(names):
        if index:
            print()
        runner, renderer = _ARTIFACTS[name]
        if args.chart and name in chart_renderers:
            renderer = chart_renderers[name]
        with obs.span(f"experiment.{name}", scale=args.scale):
            result = runner(context)
        print(renderer(result))

    if args.trace is not None:
        lines = obs.export_jsonl(args.trace)
        print(f"\n[obs] wrote {lines} trace lines to {args.trace}")
    if args.metrics:
        print()
        print(render_run_report(obs.snapshot()))
    if instrumented:
        obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
