"""Command-line entry point: artifacts, the session server, trace tooling.

Subcommands::

    fisql-repro run figure2 --scale medium          # paper artifacts
    fisql-repro run all --scale small --metrics --trace /tmp/t.jsonl
    fisql-repro run all --journal /tmp/j --resume   # crash-safe resume
    fisql-repro run table2 --workers 4 --worker-mode process \
        --suite-dir /tmp/suites                     # multi-core sweep
    fisql-repro serve --port 8080 --scale small     # session server
    fisql-repro serve --transport async --port 8080 # asyncio transport
    fisql-repro top --port 8080 --interval 2        # live /statusz dashboard
    fisql-repro cache stats --cache-dir /tmp/cache  # cache store ops
    fisql-repro semcache replay --semantic-cache-dir /tmp/sc  # replay log
    fisql-repro journal compact --journal /tmp/j    # fold sealed segments
    fisql-repro trace-summary /tmp/t.jsonl          # re-render a trace

Back-compat: the bare artifact form still works — ``fisql-repro figure2
--scale small`` is an alias for ``fisql-repro run figure2 --scale small``,
so existing docs and CI invocations keep running unchanged.

``run`` flags: ``--metrics`` prints a run report after the artifacts;
``--trace PATH`` writes the full JSONL span + metric export (schema in
:mod:`repro.obs.export`); ``--inject-faults PROFILE`` runs the experiment
against a seeded deterministic chaos harness (:mod:`repro.resilience`),
with ``--llm-retries``/``--llm-timeout`` tuning the resilient wrapper.

``serve`` boots the :mod:`repro.serve` session server over the databases
of an experiment context, instrumented from the start (``/metrics`` is
live immediately); SIGINT/SIGTERM drain gracefully.

``trace-summary`` re-renders a saved ``--trace`` file as a flame-style
rollup with per-round drill-down — no experiment re-run needed.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.eval.experiments import (
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.eval.harness import SCALES, build_context
from repro.eval.reporting import (
    render_figure2,
    render_figure2_chart,
    render_figure8,
    render_figure8_chart,
    render_table2,
    render_table3,
)
from repro.llm.interface import ChatModel
from repro.llm.simulated import SimulatedLLM
from repro.obs.reporting import render_run_report
from repro.resilience import (
    CircuitBreaker,
    FaultInjectingChatModel,
    ResilientChatModel,
    RetryPolicy,
    VirtualClock,
    resolve_fault_profile,
)

#: Default retry budget when resilience flags are active.
DEFAULT_LLM_RETRIES = 2

_ARTIFACTS = {
    "figure2": (run_figure2, render_figure2),
    "table2": (run_table2, render_table2),
    "figure8": (run_figure8, render_figure8),
    "table3": (run_table3, render_table3),
}

_SUBCOMMANDS = (
    "run",
    "serve",
    "top",
    "cache",
    "semcache",
    "journal",
    "trace-summary",
    "chaos",
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Dispatch a subcommand (or the bare-artifact alias for ``run``)."""
    parser = _build_parser()
    args = parser.parse_args(_normalize_argv(argv))
    return args.func(args, parser)


def _normalize_argv(argv: Optional[Sequence[str]]) -> list:
    """Treat ``fisql-repro <artifact> …`` as ``fisql-repro run <artifact> …``.

    The alias triggers only when the first token is not a subcommand and
    some token names an artifact (or ``all``) — so ``fisql-repro -h`` and
    plain typos still reach the top-level parser untouched.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if (
        argv
        and argv[0] not in _SUBCOMMANDS
        and (set(argv) & (set(_ARTIFACTS) | {"all"}))
    ):
        return ["run"] + argv
    return argv


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fisql-repro",
        description=(
            "FISQL reproduction: regenerate the paper's artifacts, host "
            "the interactive-correction session server, or inspect traces."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="regenerate the paper's tables and figures"
    )
    run.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["all"],
        help="which table/figure to regenerate",
    )
    run.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="medium",
        help="experiment scale (full = the paper's sizes; default: medium)",
    )
    run.add_argument(
        "--seed", type=int, default=20250325, help="generator seed"
    )
    run.add_argument(
        "--chart",
        action="store_true",
        help="render figures as ASCII bar charts instead of tables",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print an observability run report after the artifacts",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL span/metric trace of the run to PATH",
    )
    run.add_argument(
        "--inject-faults",
        metavar="PROFILE",
        help=(
            "chaos-test the run: perturb LLM calls with a seeded "
            "deterministic fault profile (named: none, default, flaky, "
            "outage; or a spec like 'timeout=0.1,empty=0.05')"
        ),
    )
    run.add_argument(
        "--llm-retries",
        type=int,
        metavar="N",
        help=(
            "retries for transient LLM failures "
            f"(default {DEFAULT_LLM_RETRIES} when resilience is active)"
        ),
    )
    run.add_argument(
        "--llm-timeout",
        type=float,
        metavar="MS",
        help="per-call deadline budget in ms across retries and backoff",
    )
    _add_backend_arguments(run)
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker threads for evaluation sweeps and correction loops "
            "(results are byte-identical to --workers 1; default: 1)"
        ),
    )
    run.add_argument(
        "--worker-mode",
        choices=("thread", "process"),
        default="thread",
        help=(
            "how --workers N shards run: 'thread' shares one process "
            "(GIL-bound), 'process' uses worker processes for true "
            "multi-core sweeps (requires --suite-dir; results stay "
            "byte-identical; default: thread)"
        ),
    )
    run.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="N",
        help=(
            "LLM prompts grouped per batched dispatch during evaluation "
            "(default: 1 = sequential complete calls)"
        ),
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "persist the completion cache under DIR (completions.json): "
            "warm runs answer repeated prompts from the cache"
        ),
    )
    run.add_argument(
        "--cache-max",
        type=int,
        metavar="N",
        help=(
            "cap the completion cache at N entries with LRU eviction "
            "(requires --cache-dir; default: unbounded)"
        ),
    )
    run.add_argument(
        "--journal",
        metavar="DIR",
        help=(
            "journal each completed work item under DIR (fsync'd, "
            "crash-safe); pair with --resume to skip journaled items"
        ),
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay completed items from a non-empty --journal DIR "
            "instead of recomputing them (required to reuse one)"
        ),
    )
    run.add_argument(
        "--suite-dir",
        metavar="DIR",
        help=(
            "persist generated benchmark suites under DIR; later runs at "
            "the same scale/seed load instead of regenerating"
        ),
    )
    _add_semcache_arguments(run)
    run.set_defaults(func=_cmd_run)

    serve = subparsers.add_parser(
        "serve", help="host the interactive-correction session server"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--transport",
        choices=("thread", "async"),
        default="thread",
        help=(
            "HTTP transport: 'thread' = one thread per connection "
            "(stdlib ThreadingHTTPServer), 'async' = one asyncio event "
            "loop + a bounded request executor (default: thread)"
        ),
    )
    serve.add_argument(
        "--async-workers",
        type=int,
        metavar="N",
        help=(
            "request-executor threads under --transport async "
            "(default: 8; LLM-bound requests beyond 5N queued or "
            "running are shed)"
        ),
    )
    serve.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="which experiment context to preload (default: small)",
    )
    serve.add_argument(
        "--seed", type=int, default=20250325, help="generator seed"
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=128,
        metavar="N",
        help="resident-session cap before LRU eviction / admission refusal",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=900.0,
        metavar="SECONDS",
        help="idle time after which a session is evicted (0 disables)",
    )
    serve.add_argument(
        "--llm-retries",
        type=int,
        default=DEFAULT_LLM_RETRIES,
        metavar="N",
        help="per-tenant retries for transient LLM failures",
    )
    serve.add_argument(
        "--llm-timeout",
        type=float,
        metavar="MS",
        help="per-tenant per-call deadline budget in ms",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive failures before a tenant's circuit opens",
    )
    serve.add_argument(
        "--breaker-reset-ms",
        type=float,
        default=30_000.0,
        metavar="MS",
        help="cooldown before an open tenant circuit half-opens",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to wait for in-flight requests on SIGINT/SIGTERM",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=1,
        metavar="N",
        help=(
            "coalesce up to N concurrent same-tenant LLM calls into one "
            "batched dispatch (default: 1 = no coalescing)"
        ),
    )
    serve.add_argument(
        "--batch-wait-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="bounded wait for a coalesced batch to fill (default: 5)",
    )
    serve.add_argument(
        "--session-dir",
        metavar="DIR",
        help=(
            "persist evicted session transcripts as JSON under DIR; "
            "'resume' in POST /sessions restores them"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        metavar="N",
        help=(
            "shed chat requests beyond N concurrently in flight "
            "server-wide (503; default: unbounded)"
        ),
    )
    serve.add_argument(
        "--max-inflight-per-tenant",
        type=int,
        metavar="N",
        help=(
            "shed chat requests beyond N in flight for one tenant "
            "(429; default: unbounded)"
        ),
    )
    serve.add_argument(
        "--request-deadline-ms",
        type=float,
        metavar="MS",
        help=(
            "shed chat requests that queued longer than MS before "
            "reaching the LLM (503; default: no deadline)"
        ),
    )
    serve.add_argument(
        "--batch-max-queue",
        type=int,
        metavar="N",
        help=(
            "cap the per-tenant batch coalescer queue at N waiting "
            "prompts; excess calls are shed (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--log-dir",
        metavar="DIR",
        help=(
            "write a rotating structured JSONL event log under DIR "
            "(serve.request, llm.batch, llm.retry, journal.append events, "
            "each stamped with its request id)"
        ),
    )
    serve.add_argument(
        "--log-max-bytes",
        type=int,
        default=10 * 1024 * 1024,
        metavar="BYTES",
        help="rotate the event log past BYTES (default: 10 MiB)",
    )
    serve.add_argument(
        "--journal",
        metavar="DIR",
        help=(
            "durably journal every completed chat turn under DIR "
            "(fsync'd, correlation-id stamped)"
        ),
    )
    serve.add_argument(
        "--cache-max",
        type=int,
        metavar="N",
        help=(
            "share an in-memory completion cache (at most N entries) "
            "across every tenant stack (default: no cache)"
        ),
    )
    serve.add_argument(
        "--slo-latency-ms",
        type=float,
        metavar="MS",
        help=(
            "per-tenant latency objective for /statusz SLO accounting "
            "(default: 500)"
        ),
    )
    serve.add_argument(
        "--slo-target",
        type=float,
        default=0.95,
        metavar="FRACTION",
        help=(
            "fraction of a tenant's requests that should meet the "
            "latency objective (default: 0.95)"
        ),
    )
    serve.add_argument(
        "--read-timeout-ms",
        type=float,
        metavar="MS",
        help=(
            "per-read socket deadline on both transports: a peer that "
            "trickles its request (slow loris) gets 408/closed instead "
            "of holding a thread or buffer (default: no deadline)"
        ),
    )
    serve.add_argument(
        "--max-body-bytes",
        type=int,
        metavar="BYTES",
        help=(
            "refuse request bodies larger than BYTES with 413 before "
            "reading them (default: 64 MiB)"
        ),
    )
    _add_backend_arguments(serve)
    _add_semcache_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    top = subparsers.add_parser(
        "top",
        help="live terminal dashboard over a running server's /statusz",
    )
    top.add_argument("--host", default="127.0.0.1", help="server address")
    top.add_argument(
        "--port", type=int, default=8080, help="server port (default: 8080)"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll + repaint period (default: 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    top.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-poll HTTP timeout (default: 10)",
    )
    top.set_defaults(func=_cmd_top)

    cache = subparsers.add_parser(
        "cache",
        help="inspect or clear persisted completion/semantic caches",
    )
    cache.add_argument(
        "action",
        choices=("stats", "clear"),
        help="stats = print entry counts; clear = drop all entries",
    )
    cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="directory holding completions.json (as passed to run)",
    )
    cache.add_argument(
        "--semantic-cache-dir",
        metavar="DIR",
        help="directory holding semcache.json (as passed to run/serve)",
    )
    cache.set_defaults(func=_cmd_cache)

    semcache = subparsers.add_parser(
        "semcache",
        help="replay a recorded question log against the semantic store",
    )
    semcache.add_argument(
        "action",
        choices=("replay",),
        help=(
            "replay = re-classify questions.jsonl read-only and report "
            "hit/miss/bypass plus would-have-been-wrong divergences"
        ),
    )
    semcache.add_argument(
        "--semantic-cache-dir",
        required=True,
        metavar="DIR",
        help="directory holding semcache.json and questions.jsonl",
    )
    semcache.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="experiment context whose schemas to replay against",
    )
    semcache.add_argument(
        "--seed", type=int, default=20250325, help="generator seed"
    )
    semcache.add_argument(
        "--suite-dir",
        metavar="DIR",
        help="load the benchmark suites from DIR instead of regenerating",
    )
    semcache.set_defaults(func=_cmd_semcache)

    journal = subparsers.add_parser(
        "journal",
        help="inspect or compact a run journal directory",
    )
    journal.add_argument(
        "action",
        choices=("compact", "stats"),
        help=(
            "compact = fold sealed segments into one checksummed segment "
            "(resume-equivalent, fewer files); stats = print record and "
            "segment counts"
        ),
    )
    journal.add_argument(
        "--journal",
        required=True,
        metavar="DIR",
        help="journal directory (as passed to run/serve --journal)",
    )
    journal.set_defaults(func=_cmd_journal)

    summary = subparsers.add_parser(
        "trace-summary",
        help="re-render a saved --trace JSONL file (no re-run needed)",
    )
    summary.add_argument("path", help="path to a JSONL trace file")
    summary.add_argument(
        "--depth",
        type=int,
        metavar="N",
        help="limit the flame rollup to N levels",
    )
    summary.set_defaults(func=_cmd_trace_summary)

    chaos = subparsers.add_parser(
        "chaos",
        help="run hostile-environment scenarios and assert the invariants",
        description=(
            "Each scenario injects a specific hostile condition — a disk "
            "that fills mid-sweep, a slow-loris flood during drain, a "
            "connection-killing network — and asserts the hardening "
            "invariants: degraded-but-correct output, byte-identical "
            "resume, zero duplicated turns, honest readiness."
        ),
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help=(
            "run one named scenario (repeatable; default: all). "
            "Use --list to see the catalog."
        ),
    )
    chaos.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list the scenario catalog and exit",
    )
    chaos.add_argument(
        "--dir",
        metavar="DIR",
        dest="work_dir",
        help=(
            "keep scenario working directories under DIR for inspection "
            "(default: a removed temporary directory)"
        ),
    )
    chaos.set_defaults(func=_cmd_chaos)

    return parser


def _add_backend_arguments(sub: argparse.ArgumentParser) -> None:
    """The multi-backend router flags, shared by ``run`` and ``serve``."""
    sub.add_argument(
        "--backend",
        action="append",
        metavar="NAME=KIND[,K=V...]",
        help=(
            "add a named backend to the router pool (repeatable; kinds: "
            "simulated, http). Options: model=, base-url=, api-key=, "
            "timeout-s=, fault=, fault-seed=, retries=, deadline-ms=, "
            "breaker-threshold=, breaker-reset-ms="
        ),
    )
    sub.add_argument(
        "--route-map",
        metavar="KIND=NAME[,...]",
        help=(
            "route prompt kinds to backends (kinds: nl2sql, feedback, "
            "routing, rewrite); unmapped kinds use the first backend"
        ),
    )
    sub.add_argument(
        "--hedge-after-ms",
        type=float,
        metavar="MS",
        help=(
            "fire a hedged request at the next backend when the primary "
            "has not answered within MS (default: no hedging)"
        ),
    )
    sub.add_argument(
        "--probe-interval-ms",
        type=float,
        metavar="MS",
        help=(
            "minimum spacing between health probes of ejected backends "
            "(default: the readmission delay)"
        ),
    )


def _add_semcache_arguments(sub: argparse.ArgumentParser) -> None:
    """The semantic answer-cache flags, shared by ``run`` and ``serve``."""
    sub.add_argument(
        "--semantic-cache",
        action="store_true",
        help=(
            "serve repeated questions from the cross-request semantic "
            "answer cache (intent signatures + schema fingerprints); "
            "feedback rounds and schema changes always bypass"
        ),
    )
    sub.add_argument(
        "--semantic-cache-dir",
        metavar="DIR",
        help=(
            "persist the semantic store under DIR (semcache.json + a "
            "questions.jsonl replay log; requires --semantic-cache)"
        ),
    )
    sub.add_argument(
        "--semantic-cache-max",
        type=int,
        metavar="N",
        help=(
            "cap the semantic store at N entries with LRU eviction "
            "(requires --semantic-cache; default: 4096)"
        ),
    )
    sub.add_argument(
        "--semantic-cache-ttl-s",
        type=float,
        metavar="SECONDS",
        help=(
            "evict semantic-cache entries older than SECONDS on lookup "
            "(requires --semantic-cache; default: no expiry)"
        ),
    )


def _build_semcache(
    args: argparse.Namespace, parser: argparse.ArgumentParser
):
    """Validate the semantic-cache flags and build the store (or None)."""
    if not args.semantic_cache:
        if args.semantic_cache_dir is not None:
            parser.error("--semantic-cache-dir requires --semantic-cache")
        if args.semantic_cache_max is not None:
            parser.error("--semantic-cache-max requires --semantic-cache")
        if args.semantic_cache_ttl_s is not None:
            parser.error("--semantic-cache-ttl-s requires --semantic-cache")
        return None
    if args.semantic_cache_max is not None and args.semantic_cache_max < 1:
        parser.error(
            f"--semantic-cache-max must be >= 1: {args.semantic_cache_max}"
        )
    if args.semantic_cache_ttl_s is not None and args.semantic_cache_ttl_s <= 0:
        parser.error(
            f"--semantic-cache-ttl-s must be > 0: {args.semantic_cache_ttl_s}"
        )
    from repro.semcache import SemanticAnswerCache

    return SemanticAnswerCache(
        directory=args.semantic_cache_dir,
        max_entries=args.semantic_cache_max,
        ttl_s=args.semantic_cache_ttl_s,
    )


def _validate_backend_arguments(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    """Reject router flags without a pool, and conflicting chaos flags."""
    if args.backend:
        if getattr(args, "inject_faults", None) is not None:
            parser.error(
                "--inject-faults conflicts with --backend; use a "
                "per-backend fault= option instead "
                "(e.g. --backend primary=simulated,fault=outage)"
            )
        return
    for flag, value in (
        ("--route-map", args.route_map),
        ("--hedge-after-ms", args.hedge_after_ms),
        ("--probe-interval-ms", args.probe_interval_ms),
    ):
        if value is not None:
            parser.error(f"{flag} requires at least one --backend")


# -- run ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Run the requested experiment(s) and print the paper-format output."""
    if args.workers < 1:
        parser.error(f"--workers must be >= 1: {args.workers}")
    if args.batch_size < 1:
        parser.error(f"--batch-size must be >= 1: {args.batch_size}")
    if args.worker_mode == "process":
        if args.suite_dir is None:
            parser.error(
                "--worker-mode process requires --suite-dir (worker "
                "processes load their benchmark suites from disk)"
            )
        # Worker processes rebuild the default deterministic stack from a
        # picklable spec; per-run model wrappers don't cross the boundary.
        for flag, value in (
            ("--backend", args.backend),
            ("--inject-faults", args.inject_faults),
            ("--llm-retries", args.llm_retries),
            ("--llm-timeout", args.llm_timeout),
            ("--cache-dir", args.cache_dir),
            ("--semantic-cache", args.semantic_cache or None),
        ):
            if value:
                parser.error(f"{flag} is not supported with --worker-mode process")
    if args.cache_max is not None:
        if args.cache_dir is None:
            parser.error("--cache-max requires --cache-dir")
        if args.cache_max < 1:
            parser.error(f"--cache-max must be >= 1: {args.cache_max}")
    if args.resume and args.journal is None:
        parser.error("--resume requires --journal")
    _validate_backend_arguments(args, parser)
    semcache = _build_semcache(args, parser)
    try:
        llm = _build_llm(args)
    except ValueError as error:
        parser.error(str(error))

    cache = None
    if args.cache_dir is not None:
        from repro.llm.dispatch import CachingChatModel, CompletionCache

        cache = CompletionCache.load(args.cache_dir, max_entries=args.cache_max)
        # Cache hits return the deterministic backend's own completions,
        # so the artifact output stays byte-identical to an uncached run.
        llm = CachingChatModel(llm if llm is not None else SimulatedLLM(), cache)

    journal = None
    if args.journal is not None:
        from repro.durability import RunJournal

        journal = RunJournal(args.journal)
        if len(journal) and not args.resume:
            parser.error(
                f"journal {args.journal!r} already holds {len(journal)} "
                "records; pass --resume to replay them or point --journal "
                "at a fresh directory"
            )

    trace_preexisting = False
    if args.trace is not None:
        # Fail before the (possibly minutes-long) run, not at export time.
        # Probe in append mode: an existing trace must not be truncated by
        # the preflight — the run may still fail and the old trace is the
        # only one the user has.
        trace_preexisting = os.path.exists(args.trace)
        try:
            with open(args.trace, "a", encoding="utf-8"):
                pass
        except OSError as error:
            parser.error(f"cannot write trace file {args.trace!r}: {error}")

    instrumented = args.metrics or args.trace is not None
    if instrumented:
        obs.enable()

    try:
        context = build_context(
            scale=args.scale,
            seed=args.seed,
            llm=llm,
            workers=args.workers,
            batch_size=args.batch_size,
            journal=journal,
            suite_dir=args.suite_dir,
            semcache=semcache,
            worker_mode=args.worker_mode,
        )
        chart_renderers = {
            "figure2": render_figure2_chart,
            "figure8": render_figure8_chart,
        }
        names = (
            sorted(_ARTIFACTS) if args.artifact == "all" else [args.artifact]
        )
        for index, name in enumerate(names):
            if index:
                print()
            runner, renderer = _ARTIFACTS[name]
            if args.chart and name in chart_renderers:
                renderer = chart_renderers[name]
            with obs.span(f"experiment.{name}", scale=args.scale):
                result = runner(context)
            print(renderer(result))

        if args.trace is not None:
            lines = obs.export_jsonl(args.trace)
            print(f"\n[obs] wrote {lines} trace lines to {args.trace}")
        if args.metrics:
            print()
            print(render_run_report(obs.snapshot()))
        if cache is not None:
            entries = cache.save(args.cache_dir)
            stats = cache.stats()
            # Diagnostics go to stderr so stdout (the artifacts) stays
            # byte-comparable across cold/warm/parallel runs.
            print(
                f"[cache] {stats['hits']} hits, {stats['misses']} misses; "
                f"{entries} entries saved to {args.cache_dir}",
                file=sys.stderr,
            )
        if semcache is not None:
            stats = semcache.stats()
            line = (
                f"[semcache] {stats['hits']} hits, {stats['misses']} misses, "
                f"{stats['bypasses']} bypasses; {stats['entries']} entries"
            )
            if args.semantic_cache_dir is not None:
                semcache.save()
                line += f" saved to {args.semantic_cache_dir}"
            print(line, file=sys.stderr)
        if journal is not None:
            # Seal the active segment so every record on disk is now
            # checksummed, then report to stderr — stdout (the artifacts)
            # must stay byte-identical across cold and resumed runs.
            journal.seal()
            journal.close()
            print(f"[journal] {journal.summary()}", file=sys.stderr)
    except BaseException:
        if args.trace is not None and not trace_preexisting:
            _remove_empty_stub(args.trace)
        raise
    finally:
        if instrumented:
            obs.disable()
    return 0


def _build_llm(args: argparse.Namespace) -> Optional[ChatModel]:
    """The chat-model stack for this run; None keeps the cached default.

    Only assembled when a resilience flag is present, so plain runs stay
    byte-identical to the unwrapped pipeline.
    """
    if args.backend:
        return _build_routed_llm(args)
    if (
        args.inject_faults is None
        and args.llm_retries is None
        and args.llm_timeout is None
    ):
        return None
    llm: ChatModel = SimulatedLLM()
    if args.inject_faults is not None:
        profile = resolve_fault_profile(args.inject_faults, seed=args.seed)
        llm = FaultInjectingChatModel(llm, profile)
    retries = (
        args.llm_retries if args.llm_retries is not None else DEFAULT_LLM_RETRIES
    )
    if args.llm_timeout is not None and args.llm_timeout <= 0:
        raise ValueError(f"--llm-timeout must be > 0 ms: {args.llm_timeout}")
    # 1 ms of virtual latency per clock reading stands in for per-call
    # wall time, so an open breaker's cooldown elapses with call traffic.
    clock = VirtualClock(tick=0.001)
    return ResilientChatModel(
        llm,
        retry=RetryPolicy(
            max_retries=retries,
            deadline_ms=args.llm_timeout,
            seed=args.seed,
        ),
        breaker=CircuitBreaker(reset_after_ms=250.0, clock=clock.now),
        clock=clock.now,
        sleep=clock.sleep,
    )


def _build_routed_llm(args: argparse.Namespace) -> ChatModel:
    """A :class:`RoutingChatModel` over the ``--backend`` pool.

    Runs use the same deterministic virtual clock as the single-model
    resilient stack, with lazy on-path probing so ejection/readmission
    cycles replay identically for a given seed and fault profile.
    """
    from repro.llm.router import (
        RoutingChatModel,
        build_backend_pool,
        parse_backend_spec,
        parse_route_map,
    )

    if args.llm_timeout is not None and args.llm_timeout <= 0:
        raise ValueError(f"--llm-timeout must be > 0 ms: {args.llm_timeout}")
    if args.hedge_after_ms is not None and args.hedge_after_ms < 0:
        raise ValueError(
            f"--hedge-after-ms must be >= 0: {args.hedge_after_ms}"
        )
    if args.probe_interval_ms is not None and args.probe_interval_ms <= 0:
        raise ValueError(
            f"--probe-interval-ms must be > 0: {args.probe_interval_ms}"
        )
    specs = [parse_backend_spec(text) for text in args.backend]
    retries = (
        args.llm_retries if args.llm_retries is not None else DEFAULT_LLM_RETRIES
    )
    clock = VirtualClock(tick=0.001)
    pool = build_backend_pool(
        specs,
        clock=clock.now,
        sleep=clock.sleep,
        seed=args.seed,
        default_retries=retries,
        default_deadline_ms=args.llm_timeout,
        default_breaker_reset_ms=250.0,
        probe_interval_ms=args.probe_interval_ms,
    )
    route_map = (
        parse_route_map(args.route_map, pool.names)
        if args.route_map is not None
        else None
    )
    return RoutingChatModel(
        pool,
        route_map=route_map,
        hedge_after_ms=args.hedge_after_ms,
        probe_on_path=True,
    )


def _remove_empty_stub(path: str) -> None:
    """Drop the preflight-created trace file if the run never filled it."""
    try:
        if os.path.exists(path) and os.path.getsize(path) == 0:
            os.remove(path)
    except OSError:
        pass


# -- serve -------------------------------------------------------------------------


def _cmd_serve(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """Preload the context, build the app, and serve until signalled."""
    from repro.serve import (
        DEFAULT_ASYNC_WORKERS,
        ServeApp,
        SessionManager,
        SessionStore,
        TenantPolicy,
        run_async_server,
        run_server,
    )

    if args.max_sessions < 1:
        parser.error(f"--max-sessions must be >= 1: {args.max_sessions}")
    if args.async_workers is not None:
        if args.transport != "async":
            parser.error("--async-workers requires --transport async")
        if args.async_workers < 1:
            parser.error(f"--async-workers must be >= 1: {args.async_workers}")
    if args.llm_timeout is not None and args.llm_timeout <= 0:
        parser.error(f"--llm-timeout must be > 0 ms: {args.llm_timeout}")
    if args.batch_max < 1:
        parser.error(f"--batch-max must be >= 1: {args.batch_max}")
    if args.batch_wait_ms < 0:
        parser.error(f"--batch-wait-ms must be >= 0: {args.batch_wait_ms}")
    if args.max_inflight is not None and args.max_inflight < 1:
        parser.error(f"--max-inflight must be >= 1: {args.max_inflight}")
    if (
        args.max_inflight_per_tenant is not None
        and args.max_inflight_per_tenant < 1
    ):
        parser.error(
            "--max-inflight-per-tenant must be >= 1: "
            f"{args.max_inflight_per_tenant}"
        )
    if args.request_deadline_ms is not None and args.request_deadline_ms <= 0:
        parser.error(
            f"--request-deadline-ms must be > 0: {args.request_deadline_ms}"
        )
    if args.batch_max_queue is not None and args.batch_max_queue < 1:
        parser.error(
            f"--batch-max-queue must be >= 1: {args.batch_max_queue}"
        )
    if args.log_max_bytes < 1:
        parser.error(f"--log-max-bytes must be >= 1: {args.log_max_bytes}")
    if args.cache_max is not None and args.cache_max < 1:
        parser.error(f"--cache-max must be >= 1: {args.cache_max}")
    if args.slo_latency_ms is not None and args.slo_latency_ms <= 0:
        parser.error(f"--slo-latency-ms must be > 0: {args.slo_latency_ms}")
    if not 0.0 < args.slo_target < 1.0:
        parser.error(f"--slo-target must be in (0, 1): {args.slo_target}")
    if args.read_timeout_ms is not None and args.read_timeout_ms <= 0:
        parser.error(f"--read-timeout-ms must be > 0: {args.read_timeout_ms}")
    if args.max_body_bytes is not None and args.max_body_bytes < 1:
        parser.error(f"--max-body-bytes must be >= 1: {args.max_body_bytes}")
    _validate_backend_arguments(args, parser)
    if args.hedge_after_ms is not None and args.hedge_after_ms < 0:
        parser.error(f"--hedge-after-ms must be >= 0: {args.hedge_after_ms}")
    if args.probe_interval_ms is not None and args.probe_interval_ms <= 0:
        parser.error(
            f"--probe-interval-ms must be > 0: {args.probe_interval_ms}"
        )

    # The server is instrumented from the start: /metrics renders the live
    # registry, and every request is spanned/counted.
    obs.enable()
    if args.log_dir is not None:
        from repro.obs import StructuredLog

        obs.set_event_log(
            StructuredLog(args.log_dir, max_bytes=args.log_max_bytes)
        )
    journal = None
    if args.journal is not None:
        from repro.durability import RunJournal

        journal = RunJournal(args.journal)
    cache = None
    if args.cache_max is not None:
        from repro.llm.dispatch import CompletionCache

        cache = CompletionCache(max_entries=args.cache_max)
    semcache = _build_semcache(args, parser)
    pool = None
    route_map: dict = {}
    if args.backend:
        from repro.llm.router import (
            build_backend_pool,
            parse_backend_spec,
            parse_route_map,
        )

        try:
            specs = [parse_backend_spec(text) for text in args.backend]
            pool = build_backend_pool(
                specs,
                seed=args.seed,
                default_retries=args.llm_retries,
                default_deadline_ms=args.llm_timeout,
                default_breaker_threshold=args.breaker_threshold,
                default_breaker_reset_ms=args.breaker_reset_ms,
                probe_interval_ms=args.probe_interval_ms,
            )
            if args.route_map is not None:
                route_map = parse_route_map(args.route_map, pool.names)
        except ValueError as error:
            parser.error(str(error))
    print(
        f"fisql-serve preloading context (scale={args.scale}, "
        f"seed={args.seed})..."
    )
    context = build_context(scale=args.scale, seed=args.seed)
    store = (
        SessionStore(args.session_dir) if args.session_dir is not None else None
    )
    manager = SessionManager(
        max_sessions=args.max_sessions,
        ttl_seconds=args.session_ttl if args.session_ttl > 0 else None,
        store=store,
    )
    policy = TenantPolicy(
        max_retries=args.llm_retries,
        deadline_ms=args.llm_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_ms=args.breaker_reset_ms,
        batch_max=args.batch_max,
        batch_wait_ms=args.batch_wait_ms,
        batch_max_queue=args.batch_max_queue,
        max_inflight_total=args.max_inflight,
        max_inflight_per_tenant=args.max_inflight_per_tenant,
        request_deadline_ms=args.request_deadline_ms,
        slo_latency_ms=args.slo_latency_ms,
        slo_target=args.slo_target,
        route_map=tuple(sorted(route_map.items())),
        hedge_after_ms=args.hedge_after_ms,
    )
    app = ServeApp.from_context(
        context,
        manager=manager,
        policy=policy,
        cache=cache,
        journal=journal,
        pool=pool,
        semcache=semcache,
    )
    if pool is not None:
        # Background readmission probes: an ejected backend re-enters
        # rotation without waiting for live traffic to trip a probe.
        pool.start_probing()
    try:
        if args.transport == "async":
            return run_async_server(
                app,
                host=args.host,
                port=args.port,
                drain_grace=args.drain_grace,
                workers=(
                    args.async_workers
                    if args.async_workers is not None
                    else DEFAULT_ASYNC_WORKERS
                ),
                read_timeout_ms=args.read_timeout_ms,
                max_body_bytes=args.max_body_bytes,
            )
        return run_server(
            app,
            host=args.host,
            port=args.port,
            drain_grace=args.drain_grace,
            read_timeout_ms=args.read_timeout_ms,
            max_body_bytes=args.max_body_bytes,
        )
    finally:
        if pool is not None:
            pool.stop_probing()
        if semcache is not None and semcache.directory is not None:
            semcache.save()
        obs.disable()  # also closes the structured event log
        if journal is not None:
            journal.close()


# -- top ---------------------------------------------------------------------------


def _cmd_top(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Poll a running server's /statusz and repaint the dashboard."""
    import time as time_module

    from repro.obs.top import CLEAR_SCREEN, render_top
    from repro.serve import ServeClient, ServeClientError

    if args.interval <= 0:
        parser.error(f"--interval must be > 0: {args.interval}")
    client = ServeClient.connect(args.host, args.port, timeout=args.timeout)
    try:
        while True:
            try:
                payload = client.statusz()
            except (ServeClientError, OSError) as error:
                text = (
                    f"(cannot reach fisql-serve at "
                    f"{args.host}:{args.port}: {error})\n"
                )
            else:
                text = render_top(payload)
            if args.once:
                sys.stdout.write(text)
                return 0
            sys.stdout.write(CLEAR_SCREEN + text)
            sys.stdout.flush()
            time_module.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


# -- cache -------------------------------------------------------------------------


def _cmd_cache(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """Inspect or clear the persisted completion and/or semantic caches."""
    if args.cache_dir is None and args.semantic_cache_dir is None:
        parser.error(
            "pass --cache-dir and/or --semantic-cache-dir to pick a store"
        )
    if args.cache_dir is not None:
        from repro.llm.dispatch import CACHE_FILENAME, CompletionCache

        cache = CompletionCache.load(args.cache_dir)
        path = os.path.join(args.cache_dir, CACHE_FILENAME)
        if args.action == "stats":
            stats = cache.stats()
            size = os.path.getsize(path) if os.path.exists(path) else 0
            print(f"cache {path}")
            print(f"  entries: {stats['entries']}")
            print(f"  bytes:   {size}")
            print(f"  evictions: {stats['evictions']}")
        else:
            dropped = cache.clear()
            cache.save(args.cache_dir)
            print(f"cleared {dropped} entries from {path}")
    if args.semantic_cache_dir is not None:
        from repro.semcache import STORE_FILENAME, SemanticAnswerCache

        store = SemanticAnswerCache(directory=args.semantic_cache_dir)
        path = os.path.join(args.semantic_cache_dir, STORE_FILENAME)
        if args.action == "stats":
            stats = store.stats()
            size = os.path.getsize(path) if os.path.exists(path) else 0
            print(f"semcache {path}")
            print(f"  entries:       {stats['entries']}")
            print(f"  bytes:         {size}")
            print(f"  hits:          {stats['hits']}")
            print(f"  misses:        {stats['misses']}")
            print(f"  bypasses:      {stats['bypasses']}")
            print(f"  invalidations: {stats['invalidations']}")
            print(f"  evictions:     {stats['evictions']}")
            print(f"  fingerprints:  {stats['fingerprints']}")
        else:
            dropped = store.clear()
            store.save()
            print(f"cleared {dropped} entries from {path}")
    return 0


# -- semcache ----------------------------------------------------------------------


def _cmd_semcache(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """Replay the recorded question log against the persisted store."""
    from repro.semcache import (
        SemanticAnswerCache,
        read_question_log,
        render_replay_report,
        replay,
    )

    records = read_question_log(args.semantic_cache_dir)
    if not records:
        parser.error(
            f"no question log found under {args.semantic_cache_dir!r} "
            "(run or serve with --semantic-cache --semantic-cache-dir first)"
        )
    store = SemanticAnswerCache(directory=args.semantic_cache_dir)
    context = build_context(
        scale=args.scale, seed=args.seed, suite_dir=args.suite_dir
    )
    schemas = {
        db_id: database.schema
        for db_id, database in context.spider.benchmark.databases.items()
    }
    for db_id, database in context.aep_benchmark.databases.items():
        schemas.setdefault(db_id, database.schema)
    report = replay(store, schemas, records)
    print(render_replay_report(report))
    return 0


# -- journal -----------------------------------------------------------------------


def _cmd_journal(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """Compact a journal's sealed segments, or print its shape."""
    from repro.durability import compact_journal, journal_stats

    try:
        if args.action == "compact":
            stats = compact_journal(args.journal)
            if stats["output"] is None:
                print(
                    f"journal {args.journal}: nothing to compact "
                    f"({stats['segments']} sealed segments, "
                    f"{stats['records']} records)"
                )
            else:
                line = (
                    f"journal {args.journal}: compacted "
                    f"{stats['segments']} sealed segments into "
                    f"{stats['output']} ({stats['records']} records)"
                )
                if stats["quarantined"]:
                    line += f"; {stats['quarantined']} corrupt quarantined"
                print(line)
        else:
            stats = journal_stats(args.journal)
            print(f"journal {args.journal}")
            print(f"  records:         {stats['records']}")
            print(f"  sealed segments: {stats['sealed_segments']}")
            print(f"  active segments: {stats['active_segments']}")
    except FileNotFoundError as error:
        parser.error(str(error))
    return 0


# -- trace-summary -----------------------------------------------------------------


def _cmd_trace_summary(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """Render the flame rollup + drill-downs for a saved trace."""
    from repro.obs.trace_summary import summarize_trace_file

    try:
        print(summarize_trace_file(args.path, max_depth=args.depth))
    except (OSError, ValueError) as error:
        parser.error(f"cannot summarize {args.path!r}: {error}")
    return 0


# -- chaos -------------------------------------------------------------------------


def _cmd_chaos(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """Run the selected chaos scenarios and report every invariant check."""
    from repro.chaos.scenarios import SCENARIOS, run_scenario

    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()[0]
            print(f"{name:24s} {doc}")
        return 0

    selected = args.scenario or sorted(SCENARIOS)
    unknown = [name for name in selected if name not in SCENARIOS]
    if unknown:
        parser.error(
            f"unknown scenario(s) {', '.join(sorted(set(unknown)))}; "
            f"choose from {', '.join(sorted(SCENARIOS))}"
        )

    work_dir = Path(args.work_dir) if args.work_dir else None
    failures = 0
    for name in selected:
        print(f"=== chaos: {name} ===")
        report = run_scenario(name, work_dir=work_dir)
        for check in report["checks"]:
            verdict = "ok  " if check["passed"] else "FAIL"
            line = f"  {verdict} {check['name']}"
            if check["detail"]:
                line += f" -- {check['detail']}"
            print(line)
        passed = report["passed"]
        failures += 0 if passed else 1
        print(f"  scenario {'passed' if passed else 'FAILED'}")
    total = len(selected)
    print(f"chaos: {total - failures}/{total} scenarios passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
