"""Cross-request semantic answer cache (``repro.semcache``).

Questions are normalized into canonical :class:`IntentSignature` keys,
scoped by per-tenant schema fingerprints, and served from a bounded,
atomically persisted answer store that sits *above* the completion cache,
the router, and the backends — a hit never touches the LLM tier at all.
Guardrails: feedback rounds and schema-fingerprint changes bypass (never
read, never write), schema mutations invalidate stored entries, and
errored rounds are never cached.
"""

from repro.semcache.fingerprint import (
    display_fingerprint,
    schema_fingerprint,
)
from repro.semcache.model import (
    SemanticCachingNl2SqlModel,
    prediction_from_sql,
)
from repro.semcache.replay import (
    read_question_log,
    render_replay_report,
    replay,
)
from repro.semcache.signature import IntentSignature, build_signature
from repro.semcache.store import (
    LOG_FILENAME,
    STORE_FILENAME,
    SemanticAnswerCache,
    SemcacheLookup,
)

__all__ = [
    "IntentSignature",
    "LOG_FILENAME",
    "STORE_FILENAME",
    "SemanticAnswerCache",
    "SemcacheLookup",
    "SemanticCachingNl2SqlModel",
    "build_signature",
    "display_fingerprint",
    "prediction_from_sql",
    "read_question_log",
    "render_replay_report",
    "replay",
    "schema_fingerprint",
]
