"""The bounded, atomically persisted semantic answer store.

Every lookup classifies into exactly one of four outcomes, and the
classification *is* the guardrail logic:

* ``hit`` — same schema fingerprint, same intent signature, an answer is
  stored: serve it without touching dispatch, router, or backends.
* ``miss`` — signable question, current fingerprint, no entry: the caller
  runs the real model and offers the result back via :meth:`store`.
* ``bypass`` — the cache refuses to participate: feedback/correction
  rounds (reason ``feedback``), a changed tenant schema fingerprint
  (``schema_changed``), or a question nothing anchored to
  (``unsignable``). Bypasses never read *and never write*: a correction
  round must not poison the store with turn-local SQL.
* ``invalidate`` — counted when a schema mutation drops stored entries;
  the lookup that observed the change still reports ``bypass``.

Keys are ``{schema_fingerprint}:{signature_key}`` — tenant-*agnostic* by
design: two tenants hosting byte-identical schemas share answers (the
fingerprint proves the schemas agree). The fingerprint registry itself is
per ``(tenant, db)``: multiple live fingerprints may coexist under one
database name, so two tenants hosting *different* schemas under the same
name each keep hitting their own entries instead of invalidating each
other on every alternating lookup. A fingerprint's entries are dropped
only once no tenant references it anymore, and the tenant that observed
the change takes exactly one bypass round. Persistence reuses the
durability tier's checksummed atomic writer, so a torn or hand-edited
store file quarantines and the cache restarts cold instead of serving
garbage.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro import obs
from repro.chaos.diskfaults import disk_fault
from repro.durability.atomic import (
    canonical_json,
    read_checksummed_json,
    write_checksummed_json,
)
from repro.semcache.fingerprint import display_fingerprint, schema_fingerprint
from repro.semcache.signature import build_signature
from repro.sql.schema import DatabaseSchema

#: On-disk store document (checksummed envelope around this payload).
STORE_FILENAME = "semcache.json"
#: Append-only question log consumed by ``fisql-repro semcache replay``.
LOG_FILENAME = "questions.jsonl"
#: Bumped when the store payload layout changes; old versions load cold.
STORE_SCHEMA_VERSION = 2
#: Default entry bound when ``max_entries`` is not given.
DEFAULT_MAX_ENTRIES = 4096

_COUNTER_OUTCOMES = ("hit", "miss", "bypass", "invalidate")


@dataclass(frozen=True)
class SemcacheLookup:
    """The classification of one question against the store."""

    outcome: str  # "hit" | "miss" | "bypass"
    tenant: str
    db: str
    question: str
    fingerprint: str
    key: Optional[str] = None
    sql: Optional[str] = None
    notes: tuple[str, ...] = ()
    reason: Optional[str] = None


def _empty_stats() -> dict[str, int]:
    return {
        "hits": 0,
        "misses": 0,
        "bypasses": 0,
        "invalidations": 0,
        "evictions": 0,
        "expirations": 0,
    }


@dataclass
class _TenantView:
    fingerprints: dict[str, str] = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=_empty_stats)


class SemanticAnswerCache:
    """Cross-request answer cache keyed by schema fingerprint + intent."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_entries: Optional[int] = None,
        on_outcome: Optional[Callable[[str], None]] = None,
        ttl_s: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._directory = Path(directory) if directory is not None else None
        self._max_entries = (
            max_entries if max_entries is not None else DEFAULT_MAX_ENTRIES
        )
        if self._max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0: {ttl_s}")
        self._ttl_s = ttl_s
        self._clock = clock
        self._on_outcome = on_outcome
        self._lock = threading.Lock()
        # The question log gets its own lock: in serve mode the append
        # is disk I/O per round, and it must not serialize lookup/store
        # on other threads behind the classification lock.
        self._log_lock = threading.Lock()
        self._entries: dict[str, dict[str, object]] = {}
        self._tenants: dict[str, _TenantView] = {}
        self._stats = _empty_stats()
        self.save_failed = False
        # Once a log append fails the log is abandoned for the process:
        # a replay log with a silent hole would audit the wrong history.
        self._log_degraded = False
        self._load()

    def set_outcome_hook(
        self, hook: Optional[Callable[[str], None]]
    ) -> None:
        """Feed hit/miss/bypass outcomes to a listener (telemetry hub)."""
        self._on_outcome = hook

    # -- persistence --------------------------------------------------------

    @property
    def directory(self) -> Optional[Path]:
        return self._directory

    def _store_path(self) -> Optional[Path]:
        if self._directory is None:
            return None
        return self._directory / STORE_FILENAME

    def _log_path(self) -> Optional[Path]:
        if self._directory is None:
            return None
        return self._directory / LOG_FILENAME

    def _load(self) -> None:
        path = self._store_path()
        if path is None:
            return
        payload = read_checksummed_json(path, kind="semcache")
        if not isinstance(payload, dict):
            return
        if payload.get("version") != STORE_SCHEMA_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            for key, entry in entries.items():
                if isinstance(key, str) and isinstance(entry, dict):
                    self._entries[key] = entry
        fingerprints = payload.get("fingerprints")
        if isinstance(fingerprints, dict):
            for tenant, dbs in fingerprints.items():
                if not (isinstance(tenant, str) and isinstance(dbs, dict)):
                    continue
                view = self._tenant(tenant)
                for db, fingerprint in dbs.items():
                    if isinstance(db, str) and isinstance(fingerprint, str):
                        view.fingerprints[db] = fingerprint
        stats = payload.get("stats")
        if isinstance(stats, dict):
            for name in self._stats:
                value = stats.get(name)
                if isinstance(value, int):
                    self._stats[name] = value

    def save(self) -> Optional[Path]:
        """Atomically persist entries, fingerprints, and counters.

        A failing disk degrades gracefully: the save is skipped,
        ``save_failed`` flips, and ``durability.degraded`` records the
        loss — the in-memory store keeps serving. Returns None then.
        """
        path = self._store_path()
        if path is None:
            return None
        with self._lock:
            payload = {
                "version": STORE_SCHEMA_VERSION,
                "entries": dict(self._entries),
                "fingerprints": {
                    tenant: dict(view.fingerprints)
                    for tenant, view in self._tenants.items()
                    if view.fingerprints
                },
                "stats": dict(self._stats),
            }
        try:
            disk_fault("disk.semcache_save")
            return write_checksummed_json(path, payload)
        except OSError as error:
            self.save_failed = True
            obs.count("durability.degraded", kind="semcache")
            obs.event(
                "semcache.save_failed",
                error=f"{type(error).__name__}: {error}",
            )
            return None

    # -- classification -----------------------------------------------------

    @property
    def ttl_s(self) -> Optional[float]:
        return self._ttl_s

    def _expired(self, entry: dict) -> bool:
        """Whether the TTL bound (when set) has passed for this entry.

        An entry with no ``stored_at`` stamp under an enforced TTL is
        treated as stale: it predates TTL enforcement, so its age is
        unknown and unbounded.
        """
        if self._ttl_s is None:
            return False
        stored_at = entry.get("stored_at")
        if not isinstance(stored_at, (int, float)):
            return True
        return (self._clock() - stored_at) > self._ttl_s

    def _tenant(self, tenant: str) -> _TenantView:
        view = self._tenants.get(tenant)
        if view is None:
            view = _TenantView()
            self._tenants[tenant] = view
        return view

    def _count(self, outcome: str, tenant: str) -> None:
        obs.count(f"semcache.{outcome}", tenant=tenant)
        if self._on_outcome is not None and outcome in (
            "hit",
            "miss",
            "bypass",
        ):
            self._on_outcome(outcome)

    def _record(self, outcome: str, tenant: str) -> None:
        plural = {
            "hit": "hits",
            "miss": "misses",
            "bypass": "bypasses",
            "invalidate": "invalidations",
        }[outcome]
        self._stats[plural] += 1
        self._tenant(tenant).stats[plural] += 1
        self._count(outcome, tenant)

    def _live_fingerprints(self) -> set[str]:
        return {
            fingerprint
            for view in self._tenants.values()
            for fingerprint in view.fingerprints.values()
        }

    def _classify(
        self, tenant: str, schema: DatabaseSchema, question: str, mutate: bool
    ) -> SemcacheLookup:
        db = schema.name
        fingerprint = schema_fingerprint(schema)

        tenant_view = self._tenant(tenant)
        known = tenant_view.fingerprints.get(db)
        if known is not None and known != fingerprint:
            # This tenant's view of the database mutated: its old answers
            # are stale. Retire the old fingerprint's entries only once
            # no tenant still lives on it — another tenant may
            # legitimately host a different schema under the same name.
            if mutate:
                tenant_view.fingerprints[db] = fingerprint
                if known not in self._live_fingerprints():
                    dropped = [
                        key
                        for key in self._entries
                        if key.startswith(known + ":")
                    ]
                    for key in dropped:
                        del self._entries[key]
                    if dropped:
                        self._record("invalidate", tenant)
                self._record("bypass", tenant)
            return SemcacheLookup(
                outcome="bypass",
                tenant=tenant,
                db=db,
                question=question,
                fingerprint=fingerprint,
                reason="schema_changed",
            )
        if mutate:
            tenant_view.fingerprints[db] = fingerprint

        signature = build_signature(question, schema)
        if signature.is_empty:
            if mutate:
                self._record("bypass", tenant)
            return SemcacheLookup(
                outcome="bypass",
                tenant=tenant,
                db=db,
                question=question,
                fingerprint=fingerprint,
                reason="unsignable",
            )

        key = f"{fingerprint}:{signature.key()}"
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry):
            # Older than the TTL bound: evict on this lookup and fall
            # through to a miss, so the caller recomputes and re-stores.
            # The read-only view treats the stale entry as a miss too,
            # but never deletes.
            if mutate:
                del self._entries[key]
                self._stats["expirations"] += 1
                self._tenant(tenant).stats["expirations"] += 1
                obs.count("semcache.expired", tenant=tenant)
            entry = None
        if entry is not None:
            if mutate:
                # LRU touch: re-insert so eviction drops the coldest key.
                self._entries[key] = self._entries.pop(key)
                self._record("hit", tenant)
            notes = entry.get("notes")
            return SemcacheLookup(
                outcome="hit",
                tenant=tenant,
                db=db,
                question=question,
                fingerprint=fingerprint,
                key=key,
                sql=str(entry.get("sql", "")),
                notes=tuple(notes) if isinstance(notes, list) else (),
            )
        if mutate:
            self._record("miss", tenant)
        return SemcacheLookup(
            outcome="miss",
            tenant=tenant,
            db=db,
            question=question,
            fingerprint=fingerprint,
            key=key,
        )

    def lookup(
        self, tenant: str, schema: DatabaseSchema, question: str
    ) -> SemcacheLookup:
        """Classify a normal ask round (counts, invalidates, LRU-touches)."""
        with self._lock:
            return self._classify(tenant, schema, question, mutate=True)

    def peek(
        self, tenant: str, schema: DatabaseSchema, question: str
    ) -> SemcacheLookup:
        """Classify without mutating anything — the replay harness's view."""
        with self._lock:
            return self._classify(tenant, schema, question, mutate=False)

    def record_feedback_bypass(
        self, tenant: str, schema: DatabaseSchema, question: str
    ) -> SemcacheLookup:
        """A feedback/correction round: never read, never write."""
        with self._lock:
            self._record("bypass", tenant)
            return SemcacheLookup(
                outcome="bypass",
                tenant=tenant,
                db=schema.name,
                question=question,
                fingerprint=schema_fingerprint(schema),
                reason="feedback",
            )

    # -- writes -------------------------------------------------------------

    def store(
        self,
        lookup: SemcacheLookup,
        sql: str,
        notes: Optional[list[str]] = None,
    ) -> bool:
        """Record a successful answer for a prior ``miss``; False if refused.

        Refuses anything that is not a clean miss against the *current*
        fingerprint — bypassed rounds, errored rounds (callers must not
        offer those), and answers that raced a schema change.
        """
        if lookup.outcome != "miss" or lookup.key is None or not sql:
            return False
        with self._lock:
            view = self._tenants.get(lookup.tenant)
            if (
                view is None
                or view.fingerprints.get(lookup.db) != lookup.fingerprint
            ):
                return False
            entry: dict[str, object] = {
                "db": lookup.db,
                "question": lookup.question,
                "sql": sql,
                "notes": list(notes or []),
                "fingerprint": lookup.fingerprint,
            }
            if self._ttl_s is not None:
                # Stamped only under a TTL bound, so stores written
                # without one stay byte-identical to earlier versions.
                entry["stored_at"] = self._clock()
            self._entries[lookup.key] = entry
            self._entries[lookup.key] = self._entries.pop(lookup.key)
            while len(self._entries) > self._max_entries:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
                self._stats["evictions"] += 1
                obs.count("semcache.evictions")
            return True

    def log_round(
        self,
        lookup: SemcacheLookup,
        kind: str,
        served_sql: Optional[str] = None,
    ) -> None:
        """Append one round to the replay question log (when persistent)."""
        path = self._log_path()
        if path is None:
            return
        record = {
            "tenant": lookup.tenant,
            "db": lookup.db,
            "question": lookup.question,
            "kind": kind,
            "outcome": lookup.outcome,
            "reason": lookup.reason,
            "sql": served_sql,
        }
        line = canonical_json(record) + "\n"
        with self._log_lock:
            if self._log_degraded:
                return
            try:
                disk_fault("disk.semcache_log")
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(line)
                    handle.flush()
            except OSError as error:
                self._log_degraded = True
                obs.count("durability.degraded", kind="semcache_log")
                obs.event(
                    "semcache.log_failed",
                    error=f"{type(error).__name__}: {error}",
                )

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            view = dict(self._stats)
            view["entries"] = len(self._entries)
            view["fingerprints"] = len(self._live_fingerprints())
            return view

    def _fingerprints_by_db(self) -> dict[str, list[str]]:
        """Every live display fingerprint per db name — possibly several,
        when tenants host different schemas under the same name."""
        by_db: dict[str, set[str]] = {}
        for view in self._tenants.values():
            for db, fingerprint in view.fingerprints.items():
                by_db.setdefault(db, set()).add(fingerprint)
        return {
            db: sorted(
                display_fingerprint(fingerprint) for fingerprint in prints
            )
            for db, prints in sorted(by_db.items())
        }

    def statusz_view(self) -> dict[str, object]:
        """The ``/statusz`` section: totals plus per-tenant breakdowns."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "ttl_s": self._ttl_s,
                "hits": self._stats["hits"],
                "misses": self._stats["misses"],
                "bypasses": self._stats["bypasses"],
                "invalidations": self._stats["invalidations"],
                "evictions": self._stats["evictions"],
                "expirations": self._stats["expirations"],
                "fingerprints": self._fingerprints_by_db(),
                "tenants": {
                    tenant: {
                        "hits": view.stats["hits"],
                        "misses": view.stats["misses"],
                        "bypasses": view.stats["bypasses"],
                        "fingerprints": {
                            db: display_fingerprint(fingerprint)
                            for db, fingerprint in sorted(
                                view.fingerprints.items()
                            )
                        },
                    }
                    for tenant, view in sorted(self._tenants.items())
                },
            }

    def clear(self) -> int:
        """Drop every entry (counters survive); returns how many were held."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            for view in self._tenants.values():
                view.fingerprints.clear()
            return dropped
