"""Replay a recorded question log against the semantic store.

``fisql-repro semcache replay`` answers the operator question "if I
shipped this store, what would it have served?": every recorded round is
re-classified with :meth:`SemanticAnswerCache.peek` (zero mutation — no
counters move, no LRU touches, no invalidations), and hits are compared
against the SQL the live system actually served at record time. A
mismatch is a **divergence**: the cache would have answered differently
than the real model did — would-have-been-wrong answers surface *before*
they reach users, not after.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.semcache.store import LOG_FILENAME, SemanticAnswerCache
from repro.sql.schema import DatabaseSchema


def read_question_log(
    directory: Union[str, Path]
) -> list[dict[str, object]]:
    """Parse ``questions.jsonl``; malformed lines are skipped, not fatal."""
    path = Path(directory) / LOG_FILENAME
    records: list[dict[str, object]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def replay(
    cache: SemanticAnswerCache,
    schemas: dict[str, DatabaseSchema],
    records: list[dict[str, object]],
) -> dict[str, object]:
    """Re-run recorded rounds read-only; report breakdown + divergences."""
    report: dict[str, object] = {
        "rounds": 0,
        "hits": 0,
        "misses": 0,
        "bypasses": 0,
        "feedback_rounds": 0,
        "unknown_databases": 0,
        "divergences": [],
    }
    divergences: list[dict[str, object]] = report["divergences"]  # type: ignore[assignment]
    for record in records:
        question = record.get("question")
        db = record.get("db")
        tenant = record.get("tenant")
        if not isinstance(question, str) or not isinstance(db, str):
            continue
        report["rounds"] = int(report["rounds"]) + 1
        if record.get("kind") == "feedback":
            # The guardrail is unconditional: feedback rounds bypass.
            report["feedback_rounds"] = int(report["feedback_rounds"]) + 1
            report["bypasses"] = int(report["bypasses"]) + 1
            continue
        schema = schemas.get(db)
        if schema is None:
            report["unknown_databases"] = int(report["unknown_databases"]) + 1
            report["bypasses"] = int(report["bypasses"]) + 1
            continue
        lookup = cache.peek(
            tenant if isinstance(tenant, str) else "replay", schema, question
        )
        if lookup.outcome == "hit":
            report["hits"] = int(report["hits"]) + 1
            recorded_sql = record.get("sql")
            if isinstance(recorded_sql, str) and recorded_sql:
                if lookup.sql != recorded_sql:
                    divergences.append(
                        {
                            "tenant": lookup.tenant,
                            "db": db,
                            "question": question,
                            "recorded_sql": recorded_sql,
                            "cached_sql": lookup.sql,
                        }
                    )
        elif lookup.outcome == "miss":
            report["misses"] = int(report["misses"]) + 1
        else:
            report["bypasses"] = int(report["bypasses"]) + 1
    report["divergence_count"] = len(divergences)
    return report


def _rate(part: int, total: int) -> str:
    if total <= 0:
        return "n/a"
    return f"{100.0 * part / total:.1f}%"


def render_replay_report(
    report: dict[str, object], limit: Optional[int] = 10
) -> str:
    """Human-readable replay summary for the CLI."""
    rounds = int(report.get("rounds", 0))
    hits = int(report.get("hits", 0))
    misses = int(report.get("misses", 0))
    bypasses = int(report.get("bypasses", 0))
    answered = hits + misses
    lines = [
        "semcache replay",
        f"  rounds:        {rounds}",
        f"  hits:          {hits} ({_rate(hits, answered)} of answerable)",
        f"  misses:        {misses}",
        f"  bypasses:      {bypasses}"
        f" (feedback: {int(report.get('feedback_rounds', 0))},"
        f" unknown db: {int(report.get('unknown_databases', 0))})",
    ]
    divergences = report.get("divergences")
    divergences = divergences if isinstance(divergences, list) else []
    lines.append(f"  divergences:   {len(divergences)}")
    shown = divergences if limit is None else divergences[:limit]
    for item in shown:
        lines.append(f"    [{item.get('db')}] {item.get('question')}")
        lines.append(f"      recorded: {item.get('recorded_sql')}")
        lines.append(f"      cached:   {item.get('cached_sql')}")
    if limit is not None and len(divergences) > limit:
        lines.append(f"    ... and {len(divergences) - limit} more")
    return "\n".join(lines)
