"""Per-tenant schema fingerprints: the invalidation key of the semcache.

A cached answer is only valid against the schema it was generated for — a
renamed column or a retyped field silently changes what the "same"
question means. The fingerprint is a stable content hash over the schema's
*structural identity* (table names, column names, declared types, primary
keys) so that:

* two processes hosting identical schemas compute identical fingerprints
  (the hash rides on :func:`repro.durability.atomic.canonical_key`, the
  same canonical-JSON construction every persister uses);
* any structural mutation — add/drop/rename of a table or column, a type
  change — produces a new fingerprint, which the store treats as a
  schema-change bypass + invalidation event;
* cosmetic metadata (NL annotations, synonyms, foreign keys) does *not*
  perturb the fingerprint: it never changes what a stored SQL answer
  means against the data.

Tables and columns are hashed in name-sorted order, so the fingerprint is
invariant to declaration order — reordering columns is not a semantic
schema change.
"""

from __future__ import annotations

from repro.durability.atomic import canonical_key
from repro.sql.schema import DatabaseSchema

#: Characters of the fingerprint shown on operator surfaces (/statusz).
DISPLAY_DIGITS = 12


def schema_fingerprint(schema: DatabaseSchema) -> str:
    """A stable hex digest over the schema's tables, columns, and types."""
    material = {
        "database": schema.name.lower(),
        "tables": [
            {
                "name": table.key,
                "columns": sorted(
                    [column.key, column.dtype.value, bool(column.primary_key)]
                    for column in table.columns
                ),
            }
            for table in sorted(schema.tables, key=lambda table: table.key)
        ],
    }
    return canonical_key(material)


def display_fingerprint(fingerprint: str) -> str:
    """The operator-facing short form (full digests stay in the store)."""
    return fingerprint[:DISPLAY_DIGITS]
