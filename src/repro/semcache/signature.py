"""Canonical intent signatures: the semantic key of the answer cache.

A signature is what survives of a question after everything that does not
change the answer is stripped away. "Show the 5 cheapest flights" and
"list five cheapest flights" must produce the *same* signature; "show the
5 cheapest flights" and "show the 6 cheapest flights" must not. The
extraction is deterministic and purely lexical — no model calls — built
from five exact-match constraint classes layered over the
tokenize → stem → stopword-strip pipeline in :mod:`repro.nlp`:

* **limits** — a number adjacent to a ranking word ("top 5", "5 cheapest")
  becomes ``limit=5`` rather than a filter literal; the ranking word's
  stem stays in the token set, so "5 cheapest" and "5 largest" — opposite
  sort intents — key differently;
* **comparisons** — "more than 30" / "over 30" / "at least 30" normalize
  to operator:value pairs (``gt:30``, ``gt:30``, ``ge:30``) with the
  phrasing consumed, so paraphrases of the same threshold collide. Each
  pair is anchored to the nearest preceding content word (as a schema
  label when it resolves, its stem otherwise): "price over 300 and
  duration under 120" and "price under 120 and duration over 300"
  constrain different columns and must not share a key;
* **aggregates** — aggregation cues ("how many", "count", "number of",
  "total", "average") decide the *shape* of the answer — COUNT(*) versus
  a row listing — so they form their own dimension instead of washing
  out as stopwords;
* **entities** — quoted literals ("'Holiday Promo'") are preserved
  verbatim: they name data values, and stemming them would conflate
  distinct rows;
* **mentions** — n-grams that resolve against the tenant schema's
  vocabulary (table/column names, NL annotations, synonyms) become
  ``table:`` / ``column:`` references, anchoring the signature to the
  schema the fingerprint hashes.

What remains becomes a sorted stem *set* — order- and duplication-free, so
clause reordering does not fragment the key. An empty signature (nothing
survived: unicode-only text, bare stopwords, empty input) is unsignable
and the store bypasses rather than colliding every such question onto one
key.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional

from repro.durability.atomic import canonical_key
from repro.nlp.stem import stem
from repro.nlp.tokenize import STOPWORDS, ngrams, quoted_strings, tokenize
from repro.sql.schema import DatabaseSchema

#: Spelled-out numbers normalized to digits before constraint extraction,
#: so "top five" and "top 5" produce the same signature.
NUMBER_WORDS = {
    "zero": "0",
    "one": "1",
    "two": "2",
    "three": "3",
    "four": "4",
    "five": "5",
    "six": "6",
    "seven": "7",
    "eight": "8",
    "nine": "9",
    "ten": "10",
    "eleven": "11",
    "twelve": "12",
    "thirteen": "13",
    "fourteen": "14",
    "fifteen": "15",
    "sixteen": "16",
    "seventeen": "17",
    "eighteen": "18",
    "nineteen": "19",
    "twenty": "20",
    "thirty": "30",
    "forty": "40",
    "fifty": "50",
    "sixty": "60",
    "seventy": "70",
    "eighty": "80",
    "ninety": "90",
    "hundred": "100",
    "thousand": "1000",
}

#: Ranking words whose adjacent number is a result limit, not a filter.
LIMIT_WORDS = frozenset(
    """
    top first last best worst cheapest largest smallest highest lowest
    latest oldest newest earliest biggest longest shortest most fewest
    """.split()
)

#: Comparison phrasings, longest first so "no more than" wins over "more
#: than". Each maps to a canonical operator applied to the nearest number.
_COMPARISON_PHRASES: tuple[tuple[tuple[str, ...], str], ...] = (
    (("no", "more", "than"), "le"),
    (("no", "fewer", "than"), "ge"),
    (("no", "less", "than"), "ge"),
    (("greater", "than", "or", "equal", "to"), "ge"),
    (("less", "than", "or", "equal", "to"), "le"),
    (("more", "than"), "gt"),
    (("greater", "than"), "gt"),
    (("higher", "than"), "gt"),
    (("larger", "than"), "gt"),
    (("bigger", "than"), "gt"),
    (("less", "than"), "lt"),
    (("fewer", "than"), "lt"),
    (("lower", "than"), "lt"),
    (("smaller", "than"), "lt"),
    (("at", "least"), "ge"),
    (("at", "most"), "le"),
    (("equal", "to"), "eq"),
    (("exactly",), "eq"),
    (("over",), "gt"),
    (("above",), "gt"),
    (("under",), "lt"),
    (("below",), "lt"),
)

#: Aggregation cues, longest first. These decide the answer's shape
#: (COUNT vs listing vs SUM), so they are a signature dimension rather
#: than stopwords.
_AGGREGATE_PHRASES: tuple[tuple[tuple[str, ...], str], ...] = (
    (("how", "many"), "count"),
    (("how", "much"), "sum"),
    (("total", "number"), "count"),
    (("number", "of"), "count"),
    (("count",), "count"),
    (("total",), "sum"),
    (("sum",), "sum"),
    (("average",), "avg"),
    (("mean",), "avg"),
    (("minimum",), "min"),
    (("maximum",), "max"),
)

#: Longest schema phrase (in stemmed words) the mention matcher considers.
_MAX_MENTION_WORDS = 4


def _is_number(token: str) -> bool:
    return bool(token) and token.replace(".", "", 1).isdigit()


@dataclass(frozen=True)
class IntentSignature:
    """The canonical, order-free identity of a question's intent."""

    tokens: tuple[str, ...]
    mentions: tuple[str, ...]
    entities: tuple[str, ...]
    limit: Optional[int]
    comparisons: tuple[str, ...]
    literals: tuple[str, ...]
    aggregates: tuple[str, ...]

    @property
    def is_empty(self) -> bool:
        """True when nothing anchored: no stems, mentions, or entities."""
        return not (self.tokens or self.mentions or self.entities)

    def key(self) -> str:
        """A stable hex digest usable as a store key component."""
        return canonical_key(
            {
                "tokens": list(self.tokens),
                "mentions": list(self.mentions),
                "entities": list(self.entities),
                "limit": self.limit,
                "comparisons": list(self.comparisons),
                "literals": list(self.literals),
                "aggregates": list(self.aggregates),
            }
        )


# ---------------------------------------------------------------------------
# Schema lexicon


def _phrase_stems(text: str) -> Optional[str]:
    """Stemmed, stopword-stripped phrase for a schema vocabulary entry."""
    words = [
        stem(word)
        for word in tokenize(text.replace("_", " "))
        if word not in STOPWORDS and not _is_number(word)
    ]
    if not words or len(words) > _MAX_MENTION_WORDS:
        return None
    return " ".join(words)


def _build_lexicon(schema: DatabaseSchema) -> dict[str, str]:
    """Map stemmed phrases to ``table:``/``column:`` labels.

    Tables are indexed before columns and phrases claim their label on
    first write, so a table name shadows a same-named column elsewhere —
    matching resolution stays deterministic regardless of dict tricks.
    """
    lexicon: dict[str, str] = {}

    def _claim(text: str, label: str) -> None:
        phrase = _phrase_stems(text)
        if phrase and phrase not in lexicon:
            lexicon[phrase] = label

    for table in sorted(schema.tables, key=lambda table: table.key):
        label = f"table:{table.key}"
        _claim(table.name, label)
        _claim(table.nl_name, label)
        for synonym in table.synonyms:
            _claim(synonym, label)
    for table in sorted(schema.tables, key=lambda table: table.key):
        for column in table.columns:
            label = f"column:{table.key}.{column.key}"
            _claim(column.name, label)
            _claim(column.nl_name, label)
            for synonym in column.synonyms:
                _claim(synonym, label)
    return lexicon


_LEXICONS: "weakref.WeakKeyDictionary[DatabaseSchema, dict[str, str]]" = (
    weakref.WeakKeyDictionary()
)


def schema_lexicon(schema: DatabaseSchema) -> dict[str, str]:
    """The (cached) stemmed-phrase → schema-label index for a schema."""
    try:
        lexicon = _LEXICONS.get(schema)
    except TypeError:  # unhashable/weakref-less schema stand-ins
        return _build_lexicon(schema)
    if lexicon is None:
        lexicon = _build_lexicon(schema)
        try:
            _LEXICONS[schema] = lexicon
        except TypeError:
            pass
    return lexicon


# ---------------------------------------------------------------------------
# Constraint extraction


def _comparison_anchor(
    tokens: list[str],
    consumed: set[int],
    index: int,
    lexicon: dict[str, str],
) -> Optional[str]:
    """The nearest preceding content word, as a schema label or a stem.

    Without an anchor, "price over 300 and duration under 120" and its
    columns-swapped opposite reduce to the same floating {gt:300, lt:120}
    set — and the cache would serve thresholds bound to the wrong columns.
    """
    for pos in range(index - 1, -1, -1):
        if pos in consumed:
            continue
        token = tokens[pos]
        if token in STOPWORDS or _is_number(token):
            continue
        stemmed = stem(token)
        return lexicon.get(stemmed, stemmed)
    return None


def _extract_comparisons(
    tokens: list[str], consumed: set[int], lexicon: dict[str, str]
) -> list[str]:
    """Find comparison phrases, consume them + their number, emit
    ``anchor:op:value`` (or bare ``op:value`` when nothing precedes)."""
    comparisons = []
    index = 0
    while index < len(tokens):
        if index in consumed:
            index += 1
            continue
        matched = False
        for phrase, op in _COMPARISON_PHRASES:
            end = index + len(phrase)
            if end > len(tokens):
                continue
            if any(pos in consumed for pos in range(index, end)):
                continue
            if tuple(tokens[index:end]) != phrase:
                continue
            number_pos = next(
                (
                    pos
                    for pos in range(end, min(end + 2, len(tokens)))
                    if pos not in consumed and _is_number(tokens[pos])
                ),
                None,
            )
            if number_pos is None:
                continue
            anchor = _comparison_anchor(tokens, consumed, index, lexicon)
            constraint = f"{op}:{tokens[number_pos]}"
            if anchor is not None:
                constraint = f"{anchor}:{constraint}"
            comparisons.append(constraint)
            consumed.update(range(index, end))
            consumed.add(number_pos)
            index = end
            matched = True
            break
        if not matched:
            index += 1
    return sorted(comparisons)


def _extract_limit(
    tokens: list[str], consumed: set[int]
) -> Optional[int]:
    """A number adjacent to a ranking word is a result limit.

    Only the number is consumed: the ranking word's stem must survive
    into the token set, or "5 cheapest" and "5 largest" — opposite sort
    directions — would collide onto one cache key.
    """
    for index, token in enumerate(tokens):
        if index in consumed or not _is_number(token) or "." in token:
            continue
        for neighbor in (index - 1, index + 1):
            if neighbor < 0 or neighbor >= len(tokens) or neighbor in consumed:
                continue
            if tokens[neighbor] in LIMIT_WORDS:
                consumed.add(index)
                return int(token)
    return None


def _extract_aggregates(
    tokens: list[str], consumed: set[int]
) -> list[str]:
    """Find aggregation cues, consume them, emit canonical tags."""
    aggregates: set[str] = set()
    index = 0
    while index < len(tokens):
        if index in consumed:
            index += 1
            continue
        matched = False
        for phrase, tag in _AGGREGATE_PHRASES:
            end = index + len(phrase)
            if end > len(tokens):
                continue
            if any(pos in consumed for pos in range(index, end)):
                continue
            if tuple(tokens[index:end]) != phrase:
                continue
            aggregates.add(tag)
            consumed.update(range(index, end))
            index = end
            matched = True
            break
        if not matched:
            index += 1
    return sorted(aggregates)


def build_signature(question: str, schema: DatabaseSchema) -> IntentSignature:
    """Extract the canonical :class:`IntentSignature` of a question."""
    raw = tokenize(question)
    entities = tuple(sorted(quoted_strings(question)))
    entity_tokens = {entity.lower() for entity in entities}

    tokens = [NUMBER_WORDS.get(token, token) for token in raw]
    consumed: set[int] = {
        index
        for index, token in enumerate(tokens)
        if token.lower() in entity_tokens
    }

    lexicon = schema_lexicon(schema)
    comparisons = _extract_comparisons(tokens, consumed, lexicon)
    limit = _extract_limit(tokens, consumed)
    aggregates = _extract_aggregates(tokens, consumed)
    literals = sorted(
        {
            token
            for index, token in enumerate(tokens)
            if index not in consumed and _is_number(token)
        }
    )
    consumed.update(
        index
        for index, token in enumerate(tokens)
        if _is_number(token)
    )

    content = [
        (index, stem(token))
        for index, token in enumerate(tokens)
        if index not in consumed and token not in STOPWORDS
    ]

    stems = [item[1] for item in content]
    mentioned: set[str] = set()
    claimed: set[int] = set()
    for start, end, phrase in sorted(
        ngrams(stems, max_n=_MAX_MENTION_WORDS),
        key=lambda gram: (-(gram[1] - gram[0]), gram[0]),
    ):
        label = lexicon.get(phrase)
        if label is None:
            continue
        if any(pos in claimed for pos in range(start, end)):
            continue
        mentioned.add(label)
        claimed.update(range(start, end))

    remaining = sorted(
        {
            stemmed
            for pos, (index, stemmed) in enumerate(content)
            if pos not in claimed and stemmed not in STOPWORDS
        }
    )

    return IntentSignature(
        tokens=tuple(remaining),
        mentions=tuple(sorted(mentioned)),
        entities=entities,
        limit=limit,
        comparisons=tuple(comparisons),
        literals=tuple(literals),
        aggregates=tuple(aggregates),
    )
