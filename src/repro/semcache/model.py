"""A semantic-cache wrapper over :class:`repro.core.nl2sql.Nl2SqlModel`.

This is the batch-run integration point: it sits *above* the entire
dispatch stack (CachingChatModel, BatchingChatModel, the router, the
backends). A hit here re-parses the stored SQL locally and returns a full
:class:`Nl2SqlPrediction` without calling the inner model at all — so
``nl2sql.predictions`` and every ``llm.*`` counter stay flat, which is
exactly how the smoke tests prove the bypass-the-backends claim.

Only clean answers are offered back to the store: parse failures and
:class:`~repro.errors.LLMError` outcomes are never cached (a degraded
round must not become a sticky wrong answer).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.core.nl2sql import Nl2SqlModel, Nl2SqlPrediction
from repro.core.retrieval import DemonstrationRetriever
from repro.errors import LLMError, SqlError
from repro.llm.interface import ChatModel
from repro.semcache.store import SemanticAnswerCache, SemcacheLookup
from repro.sql import ast
from repro.sql.engine import Database
from repro.sql.parser import parse_query


def prediction_from_sql(sql: str, notes: Sequence[str]) -> Nl2SqlPrediction:
    """Rebuild a prediction from stored SQL by re-parsing it locally."""
    query: Optional[ast.Select] = None
    try:
        parsed = parse_query(sql)
        if isinstance(parsed, ast.Select):
            query = parsed
    except SqlError:
        query = None
    return Nl2SqlPrediction(sql=sql, query=query, notes=list(notes))


class SemanticCachingNl2SqlModel:
    """Duck-typed ``Nl2SqlModel`` that consults the semantic store first."""

    def __init__(
        self,
        inner: Nl2SqlModel,
        cache: SemanticAnswerCache,
        tenant: str = "run",
    ) -> None:
        self._inner = inner
        self._cache = cache
        self._tenant = tenant

    @property
    def inner(self) -> Nl2SqlModel:
        return self._inner

    @property
    def llm(self) -> ChatModel:
        return self._inner.llm

    @property
    def retriever(self) -> Optional[DemonstrationRetriever]:
        return self._inner.retriever

    def _finish(
        self, lookup: SemcacheLookup, prediction: Nl2SqlPrediction
    ) -> Nl2SqlPrediction:
        if lookup.outcome == "miss" and prediction.parse_ok:
            self._cache.store(lookup, prediction.sql, list(prediction.notes))
        self._cache.log_round(
            lookup, kind="ask", served_sql=prediction.sql or None
        )
        return prediction

    def predict(self, question: str, database: Database) -> Nl2SqlPrediction:
        lookup = self._cache.lookup(self._tenant, database.schema, question)
        if lookup.outcome == "hit":
            prediction = prediction_from_sql(lookup.sql or "", lookup.notes)
            self._cache.log_round(lookup, kind="ask", served_sql=lookup.sql)
            return prediction
        return self._finish(lookup, self._inner.predict(question, database))

    def predict_batch(
        self, items: Sequence[tuple[str, Database]]
    ) -> "list[Union[Nl2SqlPrediction, LLMError]]":
        items = list(items)
        lookups = [
            self._cache.lookup(self._tenant, database.schema, question)
            for question, database in items
        ]
        pending = [
            index
            for index, lookup in enumerate(lookups)
            if lookup.outcome != "hit"
        ]
        inner_results = (
            self._inner.predict_batch([items[index] for index in pending])
            if pending
            else []
        )
        results: "list[Union[Nl2SqlPrediction, LLMError]]" = []
        by_index = dict(zip(pending, inner_results))
        for index, lookup in enumerate(lookups):
            if lookup.outcome == "hit":
                self._cache.log_round(
                    lookup, kind="ask", served_sql=lookup.sql
                )
                results.append(
                    prediction_from_sql(lookup.sql or "", lookup.notes)
                )
                continue
            outcome = by_index[index]
            if isinstance(outcome, Nl2SqlPrediction):
                results.append(self._finish(lookup, outcome))
            else:
                # Errors are never cached; log the round as unanswered.
                self._cache.log_round(lookup, kind="ask", served_sql=None)
                results.append(outcome)
        return results
