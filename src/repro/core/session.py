"""FISQL correction sessions: the multi-round feedback loop.

``FisqlPipeline`` implements the paper's two-step procedure per round:
(1) routing — classify the feedback type and retrieve type-specific
revision demonstrations (Figure 5); (2) re-prompt the NL2SQL model with the
previous SQL, the feedback, and those demonstrations (Figure 6). The
``routing=False`` ablation skips step (1) and uses the small generic
demonstration set instead. ``highlights=True`` lets the simulated user
attach a SQL-span highlight to ground the feedback (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.core.feedback import FeedbackDemoStore
from repro.core.nl2sql import Nl2SqlModel
from repro.core.routing import FeedbackRouter
from repro.core.user import SimulatedAnnotator
from repro.datasets.base import Example
from repro.errors import LLMError, SqlError
from repro.llm.interface import ChatModel
from repro.llm.prompts import feedback_prompt
from repro.sql import ast
from repro.sql.comparison import query_is_ordered, results_match
from repro.sql.engine import Database
from repro.sql.executor import QueryResult
from repro.sql.parser import parse_query


@dataclass
class RoundRecord:
    """What happened in one feedback round.

    ``degraded`` marks rounds where regeneration failed (LLM error after
    retries, or an empty completion) and the previous SQL was kept — the
    round happened, produced nothing, and the session moved on.
    """

    round_index: int
    feedback_text: str
    feedback_type: Optional[str]
    highlight: Optional[str]
    sql_before: str
    sql_after: str
    corrected: bool
    degraded: bool = False
    notes: list[str] = field(default_factory=list)


@dataclass
class CorrectionOutcome:
    """The result of a multi-round correction session.

    ``failure`` is set by the experiment runners when the whole session
    aborted on a backend failure (skip-and-record); such outcomes count as
    uncorrected in every rate.
    """

    example_id: str
    corrected_round: Optional[int]  # 1-based; None = never corrected
    rounds: list[RoundRecord] = field(default_factory=list)
    failure: Optional[str] = None

    @property
    def corrected(self) -> bool:
        return self.corrected_round is not None

    def corrected_by(self, round_index: int) -> bool:
        """Whether the query was fixed within the first N rounds."""
        return (
            self.corrected_round is not None
            and self.corrected_round <= round_index
        )


class FisqlPipeline:
    """The FISQL feedback-incorporation pipeline."""

    def __init__(
        self,
        model: Nl2SqlModel,
        llm: Optional[ChatModel] = None,
        routing: bool = True,
        highlights: bool = False,
        demo_store: Optional[FeedbackDemoStore] = None,
    ) -> None:
        self._model = model
        self._llm = llm or model.llm
        self._routing = routing
        self._highlights = highlights
        self._demo_store = demo_store or FeedbackDemoStore.default()
        self._router = FeedbackRouter(self._llm)

    def correct(
        self,
        example: Example,
        database: Database,
        initial_sql: str,
        annotator: SimulatedAnnotator,
        max_rounds: int = 1,
    ) -> CorrectionOutcome:
        """Run up to ``max_rounds`` of feedback-driven correction."""
        gold = parse_query(example.gold_sql)
        if not isinstance(gold, ast.Select):
            raise SqlError("gold queries are expected to be plain SELECTs")
        gold_result = _run(database, gold)
        ordered = query_is_ordered(gold)

        outcome = CorrectionOutcome(example_id=example.example_id, corrected_round=None)
        current_sql = initial_sql
        current = _try_parse(current_sql)

        obs.count("correction.sessions")
        with obs.span(
            "correction.session",
            example_id=example.example_id,
            routing=self._routing,
            highlights=self._highlights,
        ) as session_span:
            for round_index in range(1, max_rounds + 1):
                if current is None:
                    break
                record = self._run_round(
                    example=example,
                    database=database,
                    annotator=annotator,
                    gold=gold,
                    gold_result=gold_result,
                    ordered=ordered,
                    current=current,
                    current_sql=current_sql,
                    round_index=round_index,
                )
                if record is None:
                    break
                outcome.rounds.append(record)
                revised = _try_parse(record.sql_after)
                if revised is None:
                    # The model's revision does not parse: keep the SQL text
                    # and the AST in lockstep at the previous round's query so
                    # the next round's feedback matches what the record shows.
                    record.notes.append(
                        "revision unparseable; rolled back to previous SQL"
                    )
                    obs.count("correction.parse_regressions")
                else:
                    current_sql = record.sql_after
                    current = revised
                if record.corrected:
                    outcome.corrected_round = round_index
                    break
            session_span.set("rounds", len(outcome.rounds))
            session_span.set("corrected_round", outcome.corrected_round)
        return outcome

    def _run_round(
        self,
        example: Example,
        database: Database,
        annotator: SimulatedAnnotator,
        gold: ast.Select,
        gold_result: QueryResult,
        ordered: bool,
        current: ast.Select,
        current_sql: str,
        round_index: int,
    ) -> Optional[RoundRecord]:
        """One feedback round; None when the annotator has nothing to say."""
        with obs.span("correction.round", round=round_index) as round_span:
            feedback = annotator.give_feedback(
                example_id=example.example_id,
                question=example.question,
                gold=gold,
                predicted=current,
                round_index=round_index,
                use_highlights=self._highlights,
            )
            if feedback is None:
                round_span.set("feedback", False)
                return None

            feedback_type: Optional[str] = None
            feedback_demos: list[str]
            routing_note: Optional[str] = None
            if self._routing:
                try:
                    feedback_type = self._router.route(feedback.text)
                except LLMError as error:
                    # Routing is an optimization, not a requirement: fall
                    # back to the generic demo set (the -Routing ablation's
                    # configuration) and keep the round alive.
                    obs.count("resilience.degraded", stage="routing")
                    routing_note = f"routing failed ({error}); generic demos"
                    feedback_demos = self._demo_store.generic()
                else:
                    feedback_demos = self._demo_store.for_type(feedback_type)
            else:
                feedback_demos = self._demo_store.generic()

            rag_demos = []
            if self._model.retriever is not None:
                rag_demos = self._model.retriever.retrieve(
                    example.question, db_id=database.schema.name
                )
            prompt = feedback_prompt(
                schema=database.schema,
                question=example.question,
                previous_sql=current_sql,
                feedback=feedback.text,
                demos=rag_demos,
                feedback_demos=feedback_demos,
                feedback_type=feedback_type,
                highlight=feedback.highlight.text if feedback.highlight else None,
                context_key=f"{example.example_id}:{round_index}",
            )
            degraded = False
            notes: list[str] = []
            if routing_note is not None:
                notes.append(routing_note)
            try:
                completion = self._llm.complete(prompt)
            except LLMError as error:
                # Regeneration failed after retries: keep the previous SQL
                # and record a degraded round instead of crashing the
                # session. The next round gets a fresh chance.
                obs.count("resilience.degraded", stage="regeneration")
                new_sql = current_sql
                degraded = True
                notes.append(f"regeneration failed ({error}); kept previous SQL")
            else:
                notes.extend(completion.notes)
                new_sql = completion.text.strip().rstrip(";")
                if not new_sql:
                    obs.count("correction.empty_completions")
                    obs.count("resilience.degraded", stage="empty_completion")
                    new_sql = current_sql
                    degraded = True
                    notes.append("empty completion; kept previous SQL")

            corrected = False if degraded else _matches(
                database, gold_result, new_sql, ordered
            )
            obs.count("correction.rounds", round=round_index)
            obs.count(
                "correction.feedback_types", type=feedback_type or "unrouted"
            )
            if feedback.highlight is not None:
                obs.count("correction.highlighted_rounds")
            if corrected:
                obs.count("correction.corrected", round=round_index)
            round_span.set("feedback_type", feedback_type)
            round_span.set("highlight", feedback.highlight is not None)
            round_span.set("corrected", corrected)
            round_span.set("degraded", degraded)
            return RoundRecord(
                round_index=round_index,
                feedback_text=feedback.text,
                feedback_type=feedback_type,
                highlight=feedback.highlight.text if feedback.highlight else None,
                sql_before=current_sql,
                sql_after=new_sql,
                corrected=corrected,
                degraded=degraded,
                notes=notes,
            )


def _try_parse(sql: str) -> Optional[ast.Select]:
    try:
        parsed = parse_query(sql)
    except SqlError:
        return None
    if isinstance(parsed, ast.Select):
        return parsed
    return None


def _run(database: Database, query: ast.Query) -> QueryResult:
    result = database.execute_ast(query)
    if not isinstance(result, QueryResult):
        # A bare assert here would be stripped under ``python -O`` and let
        # a DDL/DML-shaped gold query fall through with a non-result.
        raise SqlError(
            f"gold query did not produce rows (got {type(result).__name__})"
        )
    return result


def _matches(
    database: Database, gold_result: QueryResult, sql: str, ordered: bool
) -> bool:
    try:
        parsed = parse_query(sql)
        result = database.execute_ast(parsed)
    except SqlError:
        return False
    if not isinstance(result, QueryResult):
        return False
    return results_match(gold_result, result, ordered=ordered)
