"""Rule-based semantic parser: the simulated base NL2SQL model.

This is the executable stand-in for GPT-3.5-turbo's text-to-SQL skill. It is
a genuinely competent parser for the question styles common in SPIDER-like
benchmarks, with the *same defensible failure modes* the paper's error
analysis attributes to LLMs:

* ``X of the Y`` resolves Y as an entity; when Y is not a table the modifier
  is dropped and the bare head is linked — picking decoy columns
  (the paper's singer-name / song-name example).
* Month references without a year resolve to the model's prior-year default
  (:data:`~repro.datasets.names.MODEL_DEFAULT_YEAR`).
* Unknown qualifiers ("currently running", "live") are treated as noise
  unless a glossary entry (learned in-context from demonstrations) maps
  them to a filter.
* "List the X" includes the description column — LLM helpfulness — unless
  the name-only house convention was demonstrated.
* Phrasing conventions ("first N by", "how many <values>") follow the
  *literal* reading unless a demonstration taught the idiomatic one.

Conventions and glossary entries arrive via :class:`ParserConfig`; the
NL2SQL wrapper derives them from retrieved demonstrations, which is how
"in-context learning" is realized mechanistically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.core.linking import SchemaLinker, TableLink
from repro.datasets.names import MODEL_DEFAULT_YEAR, MONTH_NAMES
from repro.nlp.stem import stem
from repro.nlp.tokenize import tokenize
from repro.sql import ast
from repro.sql.schema import Column, DatabaseSchema, Table

#: Convention flags that demonstrations can teach (see module docstring).
CONVENTION_COUNT_DISTINCT = "count_distinct"
CONVENTION_SUM_HOW_MANY = "sum_how_many"
CONVENTION_DISTINCT_VALUES = "distinct_values"
CONVENTION_FIRST_IS_TOP = "first_is_top"
CONVENTION_NAME_ONLY = "name_only_listing"

ALL_CONVENTIONS = frozenset(
    {
        CONVENTION_COUNT_DISTINCT,
        CONVENTION_SUM_HOW_MANY,
        CONVENTION_DISTINCT_VALUES,
        CONVENTION_FIRST_IS_TOP,
        CONVENTION_NAME_ONLY,
    }
)

_COMPARISONS = {
    "greater than": ast.BinaryOperator.GT,
    "more than": ast.BinaryOperator.GT,
    "less than": ast.BinaryOperator.LT,
    "fewer than": ast.BinaryOperator.LT,
    "at least": ast.BinaryOperator.GE,
    "at most": ast.BinaryOperator.LE,
    "above": ast.BinaryOperator.GT,
    "below": ast.BinaryOperator.LT,
}

_COMPARISON_ALT = "|".join(sorted(_COMPARISONS, key=len, reverse=True))

_MONTHS = {name.lower(): index + 1 for index, name in enumerate(MONTH_NAMES)}
_MONTH_ALT = "|".join(_MONTHS)

_AGG_WORDS = {
    "average": "AVG",
    "mean": "AVG",
    "maximum": "MAX",
    "highest": "MAX",
    "largest": "MAX",
    "minimum": "MIN",
    "lowest": "MIN",
    "smallest": "MIN",
    "total": "SUM",
}


@dataclass
class ParserConfig:
    """Knobs that model the prompt context of the simulated LLM.

    Attributes:
        default_year: Year assumed for month phrases with no explicit year.
        conventions: Phrasing conventions taught by demonstrations.
        glossary: In-context vocabulary: phrase → table name, or
            ``column=value`` filter shorthand.
    """

    default_year: int = MODEL_DEFAULT_YEAR
    conventions: frozenset = frozenset()
    glossary: dict[str, str] = field(default_factory=dict)

    def knows(self, convention: str) -> bool:
        return convention in self.conventions


@dataclass
class ParseOutcome:
    """The parser's result plus notes for the Assistant's explanation."""

    query: ast.Select
    main_table: Table
    notes: list[str] = field(default_factory=list)


class SemanticParser:
    """Parses one natural-language question against one schema."""

    def __init__(
        self, schema: DatabaseSchema, config: Optional[ParserConfig] = None
    ) -> None:
        self._schema = schema
        self._config = config or ParserConfig()
        self._linker = SchemaLinker(schema)

    @property
    def linker(self) -> SchemaLinker:
        return self._linker

    # -- entry point -------------------------------------------------------------

    def parse(self, question: str) -> ParseOutcome:
        """Parse a question into a SELECT AST (always returns something)."""
        self._original_question = question
        text = _normalize(question)
        handlers = (
            self._p_join_pair,
            self._p_group_count,
            self._p_count_month,
            self._p_count_have_value,
            self._p_count_measure_total,
            self._p_count_category_values,
            self._p_count_plain,
            self._p_aggregate,
            self._p_superlative_show,
            self._p_attr_of_named,
            self._p_superlative_what,
            self._p_distinct_values,
            self._p_list_top_n,
            self._p_list_names,
            self._p_list_entities,
            self._p_which_entities,
        )
        for handler in handlers:
            outcome = handler(text)
            if outcome is not None:
                return outcome
        return self._fallback(text)

    def _original_case(self, value: str) -> str:
        """Recover a quoted literal's original casing from the question.

        The pattern matching runs on lower-cased text; string values must be
        emitted exactly as the user wrote them.
        """
        original = getattr(self, "_original_question", "")
        index = original.lower().find(value.lower())
        if index >= 0:
            return original[index : index + len(value)]
        return value

    # -- entity & column resolution ----------------------------------------------

    def _resolve_entity(self, phrase: str) -> tuple[TableLink, list[str]]:
        """Resolve an entity phrase to a table; return leftover modifier words.

        The glossary is consulted token-by-token first (in-context
        vocabulary), then the linker. Modifier words (everything that did
        not participate in the table link) are returned for filter
        extraction.
        """
        words = [w for w in tokenize(phrase) if w not in ("the", "all", "our", "a")]
        # Glossary table mappings win outright.
        for word in words:
            target = self._config.glossary.get(word) or self._config.glossary.get(
                stem(word)
            )
            if target and "=" not in target and self._schema.has_table(target):
                table = self._schema.table(target)
                leftovers = [w for w in words if w != word]
                return TableLink(table=table, score=1.0, phrase=word), leftovers

        # Try suffixes of the phrase (entity head is usually at the end).
        best: Optional[TableLink] = None
        best_used: list[str] = []
        for start in range(len(words)):
            candidate = " ".join(words[start:])
            link = self._linker.link_table(candidate)
            if link is not None and (best is None or link.score > best.score):
                best = link
                best_used = words[start:]
        if best is not None:
            leftovers = [w for w in words if w not in best_used]
            return best, leftovers
        guess = self._linker.guess_table(" ".join(words) or phrase)
        return guess, []

    def _modifier_filters(
        self, table: Table, modifiers: list[str]
    ) -> list[ast.Expression]:
        """Turn modifier words into filters via glossary value mappings.

        Unknown modifiers are dropped — the zero-shot model has no way to
        know that "currently running" means ``status = 'active'``.
        """
        filters: list[ast.Expression] = []
        for word in modifiers:
            target = self._config.glossary.get(word) or self._config.glossary.get(
                stem(word)
            )
            if target and "=" in target:
                column_name, _, value = target.partition("=")
                if table.has_column(column_name):
                    filters.append(
                        _eq(table.column(column_name).name, value)
                    )
        return filters

    def _resolve_target_column(
        self, phrase: str, table: Table
    ) -> tuple[Optional[Column], Optional[str]]:
        """Resolve the asked-for attribute phrase to a column.

        Implements the paper's ambiguity failure: ``X of the Y`` first tries
        to read Y as an entity; when Y is not a table, the modifier is
        dropped and the bare head X is linked (note returned for logging).
        """
        phrase = phrase.strip()
        if " of the " in phrase:
            head, _, modifier = phrase.partition(" of the ")
            modifier_link = self._linker.link_table(modifier)
            if modifier_link is None:
                link = self._linker.link_column(table, head.strip())
                note = (
                    f"could not resolve entity {modifier!r}; "
                    f"linked bare head {head!r}"
                )
                return (link.column if link else None), note
            # The modifier names another entity — keep the full phrase and
            # link it within the *current* table (our templates never need a
            # cross-table attribute here).
        link = self._linker.link_column(table, phrase)
        return (link.column if link else None), None

    # -- handlers ------------------------------------------------------------------

    def _p_count_plain(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^how many (.+?) (?:are there|do we have|exist)$", text
        )
        if match is None:
            return None
        link, modifiers = self._resolve_entity(match.group(1))
        filters = self._modifier_filters(link.table, modifiers)
        query = _select_count(link.table, filters)
        return ParseOutcome(query=query, main_table=link.table)

    def _p_count_month(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            rf"^how many (.+?) were (\w+) in ({_MONTH_ALT})(?: (\d{{4}}))?$",
            text,
        )
        if match is None:
            return None
        entity, verb, month_word, year_text = match.groups()
        link, modifiers = self._resolve_entity(entity)
        date_column = self._linker.date_column(link.table, hint=verb)
        if date_column is None:
            return None
        year = int(year_text) if year_text else self._config.default_year
        month = _MONTHS[month_word]
        filters = self._modifier_filters(link.table, modifiers)
        filters.extend(_month_filters(date_column.name, year, month))
        query = _select_count(link.table, filters)
        notes = []
        if not year_text:
            notes.append(f"assumed year {year} for {month_word}")
        return ParseOutcome(query=query, main_table=link.table, notes=notes)

    def _p_count_have_value(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(r"^how many (.+?) have (.+?) '(.+)'$", text)
        if match is None:
            return None
        entity, attr_phrase, value = match.groups()
        link, modifiers = self._resolve_entity(entity)
        column, _note = self._resolve_target_column(attr_phrase, link.table)
        if column is None:
            return None
        filters = self._modifier_filters(link.table, modifiers)
        filters.append(_eq(column.name, self._original_case(value)))
        query = _select_count(link.table, filters)
        return ParseOutcome(query=query, main_table=link.table)

    def _p_count_measure_total(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^how many (.+?) do the (.+?) have (?:altogether|in total)$", text
        )
        if match is None:
            return None
        measure_phrase, entity = match.groups()
        link, _modifiers = self._resolve_entity(entity)
        column, _note = self._resolve_target_column(measure_phrase, link.table)
        if column is None:
            return None
        function = (
            "SUM" if self._config.knows(CONVENTION_SUM_HOW_MANY) else "COUNT"
        )
        query = ast.Select(
            items=[
                ast.SelectItem(
                    ast.FunctionCall(function, [ast.ColumnRef(column.name)])
                )
            ],
            source=ast.TableRef(link.table.name),
        )
        return ParseOutcome(query=query, main_table=link.table)

    def _p_count_category_values(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^how many (.+?) (?:are represented among the|do the) (.+?)"
            r"(?: come from)?$",
            text,
        )
        if match is None:
            return None
        value_phrase, entity = match.groups()
        link, _modifiers = self._resolve_entity(entity)
        column, _note = self._resolve_target_column(value_phrase, link.table)
        if column is None:
            return None
        distinct = self._config.knows(CONVENTION_COUNT_DISTINCT)
        query = ast.Select(
            items=[
                ast.SelectItem(
                    ast.FunctionCall(
                        "COUNT", [ast.ColumnRef(column.name)], distinct=distinct
                    )
                )
            ],
            source=ast.TableRef(link.table.name),
        )
        return ParseOutcome(query=query, main_table=link.table)

    def _p_aggregate(self, text: str) -> Optional[ParseOutcome]:
        agg_alt = "|".join(_AGG_WORDS)
        match = re.match(rf"^what is the ({agg_alt}) (.+)$", text)
        if match is None:
            return None
        agg_word, rest = match.groups()
        # The attribute phrase may itself contain "of" ("number of
        # branches of all teams"), so try every "of/across" split point and
        # keep the one where both the entity and the column link best.
        best: Optional[tuple[float, Column, TableLink]] = None
        for divider in re.finditer(r" (?:of|across) (?:all |our |the )?", rest):
            attr_phrase = rest[: divider.start()]
            entity = rest[divider.end():]
            if not attr_phrase or not entity:
                continue
            link, _modifiers = self._resolve_entity(entity)
            column, _note = self._resolve_target_column(attr_phrase, link.table)
            if column is None:
                continue
            score = link.score + self._linker.column_score(column, attr_phrase)
            if best is None or score > best[0]:
                best = (score, column, link)
        if best is None:
            return None
        _score, column, link = best
        query = ast.Select(
            items=[
                ast.SelectItem(
                    ast.FunctionCall(
                        _AGG_WORDS[agg_word], [ast.ColumnRef(column.name)]
                    )
                )
            ],
            source=ast.TableRef(link.table.name),
        )
        return ParseOutcome(query=query, main_table=link.table)

    def _p_superlative_what(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^what is the (.+) of the (.+?) with the (highest|lowest) (.+)$",
            text,
        )
        if match is None:
            return None
        return self._superlative(*match.groups())

    def _p_superlative_show(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^(?:show|give) the (.+?) by the (.+?) with the (highest|lowest) (.+)$",
            text,
        )
        if match is None:
            return None
        return self._superlative(*match.groups())

    def _superlative(
        self, target_phrase: str, entity: str, direction_word: str, attr_phrase: str
    ) -> Optional[ParseOutcome]:
        link, _modifiers = self._resolve_entity(entity)
        target, note = self._resolve_target_column(target_phrase, link.table)
        order_column, _n2 = self._resolve_target_column(attr_phrase, link.table)
        if target is None or order_column is None:
            return None
        direction = (
            ast.SortOrder.DESC if direction_word == "highest" else ast.SortOrder.ASC
        )
        query = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(target.name))],
            source=ast.TableRef(link.table.name),
            order_by=[ast.OrderItem(ast.ColumnRef(order_column.name), direction)],
            limit=1,
        )
        notes = [note] if note else []
        return ParseOutcome(query=query, main_table=link.table, notes=notes)

    def _p_attr_of_named(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(r"^what is the (.+) of the (.+?) named '(.+)'$", text)
        if match is None:
            return None
        attr_phrase, entity, name_value = match.groups()
        link, _modifiers = self._resolve_entity(entity)
        column, note = self._resolve_target_column(attr_phrase, link.table)
        name_column = self._linker.name_column(link.table)
        if column is None or name_column is None:
            return None
        query = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(column.name))],
            source=ast.TableRef(link.table.name),
            where=_eq(name_column.name, self._original_case(name_value)),
        )
        notes = [note] if note else []
        return ParseOutcome(query=query, main_table=link.table, notes=notes)

    def _p_distinct_values(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^what are the (different )?(.+?) values of the (.+)$", text
        )
        if match is None:
            return None
        different, attr_phrase, entity = match.groups()
        link, _modifiers = self._resolve_entity(entity)
        column, _note = self._resolve_target_column(attr_phrase, link.table)
        if column is None:
            return None
        distinct = bool(different) or self._config.knows(
            CONVENTION_DISTINCT_VALUES
        )
        query = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(column.name))],
            source=ast.TableRef(link.table.name),
            distinct=distinct,
        )
        return ParseOutcome(query=query, main_table=link.table)

    def _p_list_top_n(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^(?:list|show|give) the names? of the (top|first) (\d+) (.+?) by (.+)$",
            text,
        )
        if match is None:
            return None
        rank_word, n_text, entity, attr_phrase = match.groups()
        link, _modifiers = self._resolve_entity(entity)
        name_column = self._linker.name_column(link.table)
        order_column, _note = self._resolve_target_column(attr_phrase, link.table)
        if name_column is None or order_column is None:
            return None
        if rank_word == "top":
            direction = ast.SortOrder.DESC
        elif self._config.knows(CONVENTION_FIRST_IS_TOP):
            direction = ast.SortOrder.DESC
        else:
            direction = ast.SortOrder.ASC
        query = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(name_column.name))],
            source=ast.TableRef(link.table.name),
            order_by=[ast.OrderItem(ast.ColumnRef(order_column.name), direction)],
            limit=int(n_text),
        )
        return ParseOutcome(query=query, main_table=link.table)

    def _p_list_names(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^(?:list|show|give|what are) the names? of (?:all |the )?(.+)$", text
        )
        if match is None:
            return None
        remainder = match.group(1)
        return self._entity_listing(remainder, names_only=True)

    def _p_list_entities(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(r"^(?:list|show|give) the (.+)$", text)
        if match is None:
            return None
        return self._entity_listing(match.group(1), names_only=False)

    def _p_which_entities(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(r"^which (.+?) (?:is|are) (.+)$", text)
        if match is None:
            return None
        entity, _rest = match.groups()
        link, modifiers = self._resolve_entity(entity)
        name_column = self._linker.name_column(link.table)
        if name_column is None:
            return None
        filters = self._modifier_filters(link.table, modifiers)
        query = ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(name_column.name))],
            source=ast.TableRef(link.table.name),
            where=_and(filters),
        )
        notes = ["could not interpret the relation; listing all candidates"]
        return ParseOutcome(query=query, main_table=link.table, notes=notes)

    def _entity_listing(
        self, remainder: str, names_only: bool
    ) -> Optional[ParseOutcome]:
        """Shared handling for 'list the names of X' / 'list the X'."""
        entity_phrase, filters_fn = _split_entity_filters(remainder)
        link, modifiers = self._resolve_entity(entity_phrase)
        filters = self._modifier_filters(link.table, modifiers)
        built = filters_fn(self, link.table)
        if built is None:
            return None
        extra_filters, order_by, limit = built
        filters.extend(extra_filters)

        name_column = self._linker.name_column(link.table)
        if name_column is None:
            return None
        items = [ast.SelectItem(ast.ColumnRef(name_column.name))]
        notes: list[str] = []
        if not names_only and not self._config.knows(CONVENTION_NAME_ONLY):
            description = self._linker.description_column(link.table)
            if description is not None:
                items.append(ast.SelectItem(ast.ColumnRef(description.name)))
                notes.append("included descriptions for readability")
        query = ast.Select(
            items=items,
            source=ast.TableRef(link.table.name),
            where=_and(filters),
            order_by=order_by,
            limit=limit,
        )
        return ParseOutcome(query=query, main_table=link.table, notes=notes)

    def _p_group_count(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(r"^how many (.+?) are there for each (.+)$", text)
        if match is None:
            return None
        entity, key_phrase = match.groups()
        link, _modifiers = self._resolve_entity(entity)
        column_link = self._linker.link_column(link.table, key_phrase)
        if (
            column_link is not None
            and not column_link.column.primary_key
            and not column_link.column.key.endswith("_id")
            and not column_link.column.key.endswith("id")
        ):
            query = ast.Select(
                items=[
                    ast.SelectItem(ast.ColumnRef(column_link.column.name)),
                    ast.SelectItem(ast.FunctionCall("COUNT", [ast.Star()])),
                ],
                source=ast.TableRef(link.table.name),
                group_by=[ast.ColumnRef(column_link.column.name)],
            )
            return ParseOutcome(query=query, main_table=link.table)
        # Maybe the key is a parent table reachable by FK.
        parent_link = self._linker.link_table(key_phrase)
        if parent_link is not None:
            outcome = self._group_by_parent(link.table, parent_link.table)
            if outcome is not None:
                return outcome
        return None

    def _group_by_parent(
        self, child: Table, parent: Table
    ) -> Optional[ParseOutcome]:
        fk = self._schema.join_path(child.name, parent.name)
        if fk is None:
            return None
        parent_name = self._linker.name_column(parent)
        if parent_name is None:
            return None
        join = _fk_join(child, parent, fk)
        query = ast.Select(
            items=[
                ast.SelectItem(ast.ColumnRef(parent_name.name, table="T2")),
                ast.SelectItem(ast.FunctionCall("COUNT", [ast.Star()])),
            ],
            source=join,
            group_by=[ast.ColumnRef(parent_name.name, table="T2")],
        )
        return ParseOutcome(query=query, main_table=child)

    def _p_join_pair(self, text: str) -> Optional[ParseOutcome]:
        match = re.match(
            r"^show the name of each (.+?) together with the name of its (.+)$",
            text,
        )
        if match is None:
            return None
        child_phrase, parent_phrase = match.groups()
        child_link = self._linker.link_table(child_phrase)
        parent_link = self._linker.link_table(parent_phrase)
        if child_link is None or parent_link is None:
            return None
        fk = self._schema.join_path(child_link.table.name, parent_link.table.name)
        if fk is None:
            return None
        child_name = self._linker.name_column(child_link.table)
        parent_name = self._linker.name_column(parent_link.table)
        if child_name is None or parent_name is None:
            return None
        join = _fk_join(child_link.table, parent_link.table, fk)
        query = ast.Select(
            items=[
                ast.SelectItem(ast.ColumnRef(child_name.name, table="T1")),
                ast.SelectItem(ast.ColumnRef(parent_name.name, table="T2")),
            ],
            source=join,
        )
        return ParseOutcome(query=query, main_table=child_link.table)

    def _fallback(self, text: str) -> ParseOutcome:
        """Last resort: the model outputs its best guess rather than nothing."""
        link = self._linker.guess_table(text)
        if text.startswith("how many"):
            query = _select_count(link.table, [])
        else:
            name_column = self._linker.name_column(link.table)
            target = (
                ast.ColumnRef(name_column.name)
                if name_column is not None
                else ast.Star()
            )
            query = ast.Select(
                items=[ast.SelectItem(target)],
                source=ast.TableRef(link.table.name),
            )
        return ParseOutcome(
            query=query,
            main_table=link.table,
            notes=["no pattern matched; produced a best-effort guess"],
        )


# ---------------------------------------------------------------------------
# Filter extraction inside entity phrases
# ---------------------------------------------------------------------------


def _split_entity_filters(remainder: str):
    """Split "products whose price is greater than 70" style phrases.

    Returns (entity_phrase, builder) where builder(parser, table) returns
    (filters, order_by, limit) or None when the referenced column cannot be
    linked.
    """
    remainder = remainder.strip().rstrip(".")

    match = re.match(
        r"^(.+?) whose (.+?) is (above|below) the average$", remainder
    )
    if match is not None:
        entity, attr_phrase, word = match.groups()

        def build_avg(parser: SemanticParser, table: Table):
            column, _note = parser._resolve_target_column(attr_phrase, table)
            if column is None:
                return None
            op = _COMPARISONS[word]
            sub = ast.Select(
                items=[
                    ast.SelectItem(
                        ast.FunctionCall("AVG", [ast.ColumnRef(column.name)])
                    )
                ],
                source=ast.TableRef(table.name),
            )
            condition = ast.BinaryOp(
                op, ast.ColumnRef(column.name), ast.ScalarSubquery(sub)
            )
            return [condition], [], None

        return entity, build_avg

    match = re.match(
        rf"^(.+?) (?:whose|with) (.+?) (?:is )?({_COMPARISON_ALT}) "
        r"(\d+(?:\.\d+)?)$",
        remainder,
    )
    if match is not None:
        entity, attr_phrase, cmp_word, number = match.groups()

        def build_cmp(parser: SemanticParser, table: Table):
            column, _note = parser._resolve_target_column(attr_phrase, table)
            if column is None:
                return None
            value = float(number) if "." in number else int(number)
            condition = ast.BinaryOp(
                _COMPARISONS[cmp_word],
                ast.ColumnRef(column.name),
                ast.Literal(value),
            )
            return [condition], [], None

        return entity, build_cmp

    match = re.match(
        r"^(.+?) with (.+?) between (\d+(?:\.\d+)?) and (\d+(?:\.\d+)?)$",
        remainder,
    )
    if match is not None:
        entity, attr_phrase, low, high = match.groups()

        def build_between(parser: SemanticParser, table: Table):
            column, _note = parser._resolve_target_column(attr_phrase, table)
            if column is None:
                return None
            low_v = float(low) if "." in low else int(low)
            high_v = float(high) if "." in high else int(high)
            condition = ast.Between(
                operand=ast.ColumnRef(column.name),
                low=ast.Literal(low_v),
                high=ast.Literal(high_v),
            )
            return [condition], [], None

        return entity, build_between

    match = re.match(
        rf"^(.+?) (\w+) in ({_MONTH_ALT})(?: (\d{{4}}))?$", remainder
    )
    if match is not None:
        entity, verb, month_word, year_text = match.groups()

        def build_month(parser: SemanticParser, table: Table):
            date_column = parser.linker.date_column(table, hint=verb)
            if date_column is None:
                return None
            year = (
                int(year_text) if year_text else parser._config.default_year
            )
            return (
                _month_filters(date_column.name, year, _MONTHS[month_word]),
                [],
                None,
            )

        return entity, build_month

    def build_nothing(parser: SemanticParser, table: Table):
        return [], [], None

    return remainder, build_nothing


# ---------------------------------------------------------------------------
# AST construction helpers
# ---------------------------------------------------------------------------


def _normalize(question: str) -> str:
    text = question.strip().lower()
    text = re.sub(r"\s+", " ", text)
    return text.rstrip("?.! ")


def _eq(column: str, value: object) -> ast.Expression:
    return ast.BinaryOp(
        ast.BinaryOperator.EQ, ast.ColumnRef(column), ast.Literal(value)
    )


def _and(filters: list[ast.Expression]) -> Optional[ast.Expression]:
    if not filters:
        return None
    result = filters[0]
    for part in filters[1:]:
        result = ast.BinaryOp(ast.BinaryOperator.AND, result, part)
    return result


def _select_count(table: Table, filters: list[ast.Expression]) -> ast.Select:
    return ast.Select(
        items=[ast.SelectItem(ast.FunctionCall("COUNT", [ast.Star()]))],
        source=ast.TableRef(table.name),
        where=_and(filters),
    )


def _month_filters(column: str, year: int, month: int) -> list[ast.Expression]:
    start = f"{year:04d}-{month:02d}-01"
    if month == 12:
        end = f"{year + 1:04d}-01-01"
    else:
        end = f"{year:04d}-{month + 1:02d}-01"
    return [
        ast.BinaryOp(
            ast.BinaryOperator.GE, ast.ColumnRef(column), ast.Literal(start)
        ),
        ast.BinaryOp(
            ast.BinaryOperator.LT, ast.ColumnRef(column), ast.Literal(end)
        ),
    ]


def _fk_join(child: Table, parent: Table, fk) -> ast.Join:
    """Build ``child AS T1 JOIN parent AS T2 ON T1.fk = T2.pk``."""
    if fk.ref_table.lower() == parent.key:
        child_col, parent_col = fk.column, fk.ref_column
    else:
        child_col, parent_col = fk.ref_column, fk.column
    return ast.Join(
        kind=ast.JoinKind.INNER,
        left=ast.TableRef(child.name, alias="T1"),
        right=ast.TableRef(parent.name, alias="T2"),
        condition=ast.BinaryOp(
            ast.BinaryOperator.EQ,
            ast.ColumnRef(child_col, table="T1"),
            ast.ColumnRef(parent_col, table="T2"),
        ),
    )
