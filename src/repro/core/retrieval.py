"""RAG demonstration retriever.

The Assistant's NL2SQL model "utilizes a retrieval-augmented generation
approach to adaptively draw user query-relevant SQL demonstrations". Here
the store embeds demonstration questions with TF-IDF and retrieves the
top-k nearest by cosine similarity, optionally restricted to the question's
database.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.datasets.base import Demonstration
from repro.nlp.vectorize import TfidfVectorizer, cosine_top_k


class DemonstrationRetriever:
    """Embeds a demonstration pool once; retrieves per query."""

    def __init__(
        self, demonstrations: Sequence[Demonstration], top_k: int = 4
    ) -> None:
        self._demos = list(demonstrations)
        self._top_k = top_k
        self._vectorizer = TfidfVectorizer()
        if self._demos:
            self._matrix = self._vectorizer.fit_transform(
                [demo.question for demo in self._demos]
            )
        else:
            self._matrix = np.zeros((0, 0))

    def __len__(self) -> int:
        return len(self._demos)

    def retrieve(
        self, question: str, db_id: Optional[str] = None, top_k: Optional[int] = None
    ) -> list[Demonstration]:
        """Top-k demonstrations for a question.

        When ``db_id`` is given, same-database demonstrations are preferred:
        they are ranked first, then the remainder fill up to ``top_k``.
        """
        if not self._demos:
            return []
        with obs.span("retrieval.retrieve", db=db_id), obs.timer(
            "retrieval.latency_ms"
        ):
            k = top_k or self._top_k
            query_vec = self._vectorizer.transform([question])[0]
            # Retrieve a generous pool, then apply the same-database preference.
            pool = cosine_top_k(
                query_vec, self._matrix, min(len(self._demos), k * 4)
            )
            same_db = [
                self._demos[i]
                for i, _s in pool
                if db_id and self._demos[i].db_id == db_id
            ]
            others = [
                self._demos[i]
                for i, _s in pool
                if not (db_id and self._demos[i].db_id == db_id)
            ]
            ranked = same_db + others
            retrieved = ranked[:k]
            obs.count("retrieval.calls")
            obs.observe("retrieval.demos", len(retrieved))
            return retrieved
