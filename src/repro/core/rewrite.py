"""The Query Rewrite baseline (Table 2's comparison system).

Given the original question and the user's feedback, a paraphrasing model
merges them into a new self-contained question, which is then re-answered
from scratch by the NL2SQL model. No anchoring to the previous SQL — the
baseline must re-derive everything, which is exactly where it loses to
FISQL on operation-level feedback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.feedback import Feedback
from repro.core.nl2sql import Nl2SqlModel, Nl2SqlPrediction
from repro.llm.interface import ChatModel
from repro.llm.prompts import rewrite_prompt
from repro.sql.engine import Database


@dataclass
class RewriteStep:
    """One rewrite-and-reanswer step."""

    merged_question: str
    prediction: Nl2SqlPrediction


class QueryRewriteBaseline:
    """Feedback incorporation by question reformulation."""

    def __init__(self, llm: ChatModel, model: Nl2SqlModel) -> None:
        self._llm = llm
        self._model = model

    def incorporate(
        self, question: str, feedback: Feedback, database: Database
    ) -> RewriteStep:
        """Merge feedback into the question and re-generate SQL."""
        prompt = rewrite_prompt(question, feedback.text)
        merged = self._llm.complete(prompt).text.strip()
        prediction = self._model.predict(merged, database)
        return RewriteStep(merged_question=merged, prediction=prediction)
