"""Conversational session state: the AEP Assistant chat experience.

The paper's tool is a chat: the user asks a question, reads the four-part
response, and may reply with feedback (optionally highlighting a SQL span),
repeatedly. :class:`ChatSession` packages that loop behind two methods —
``ask`` and ``give_feedback`` — maintaining the conversation state the
Figure 6 prompt needs (the current question and the previous SQL).

Example::

    session = ChatSession(database, Nl2SqlModel())
    session.ask("How many segments were created in January?")
    session.give_feedback("we are in 2024")
    print(session.transcript())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.assistant import Assistant, AssistantResponse
from repro.core.explain import explanation_text
from repro.core.feedback import FeedbackDemoStore
from repro.core.nl2sql import Nl2SqlModel, Nl2SqlPrediction
from repro.core.routing import FeedbackRouter
from repro.errors import ReproError, SqlError
from repro.llm.interface import ChatModel
from repro.llm.prompts import feedback_prompt
from repro.sql import ast
from repro.sql.engine import Database
from repro.sql.executor import QueryResult
from repro.sql.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.semcache.store import SemanticAnswerCache


@dataclass
class ChatTurn:
    """One message in the conversation."""

    role: str  # "user" | "assistant"
    text: str
    sql: Optional[str] = None
    highlight: Optional[str] = None


class ChatSession:
    """A stateful ask/feedback conversation against one database."""

    def __init__(
        self,
        database: Database,
        model: Nl2SqlModel,
        llm: Optional[ChatModel] = None,
        routing: bool = True,
        demo_store: Optional[FeedbackDemoStore] = None,
        semcache: "Optional[SemanticAnswerCache]" = None,
        tenant: str = "default",
    ) -> None:
        self._database = database
        self._model = model
        self._llm = llm or model.llm
        self._routing = routing
        self._semcache = semcache
        self._tenant = tenant
        self._demo_store = demo_store or FeedbackDemoStore.default()
        self._router = FeedbackRouter(self._llm)
        self._assistant = Assistant(model)
        self._turns: list[ChatTurn] = []
        self._question: Optional[str] = None
        self._sql: Optional[str] = None

    @property
    def turns(self) -> list[ChatTurn]:
        return list(self._turns)

    @property
    def current_sql(self) -> Optional[str]:
        """The latest generated SQL (the 'Show Source' content)."""
        return self._sql

    # -- interaction ------------------------------------------------------------

    def ask(self, question: str) -> AssistantResponse:
        """Ask a fresh question (starts a new correction context).

        With a semantic cache attached, a hit rebuilds the four-part
        response from the stored SQL locally — no model, no LLM, no
        backends. Misses run the normal pipeline and offer clean (error-
        free) answers back to the store; bypassed rounds never touch it.
        """
        self._turns.append(ChatTurn(role="user", text=question))
        lookup = None
        if self._semcache is not None:
            lookup = self._semcache.lookup(
                self._tenant, self._database.schema, question
            )
            if lookup.outcome == "hit":
                self._question = question
                response = self._respond_with(
                    lookup.sql or "", list(lookup.notes)
                )
                self._sql = response.sql
                self._semcache.log_round(
                    lookup, kind="ask", served_sql=lookup.sql
                )
                self._turns.append(
                    ChatTurn(
                        role="assistant",
                        text=response.render(),
                        sql=response.sql,
                    )
                )
                return response
        response = self._assistant.answer(question, self._database)
        self._question = question
        self._sql = response.sql
        if lookup is not None and self._semcache is not None:
            served = response.sql if response.error is None else None
            if lookup.outcome == "miss" and served:
                self._semcache.store(
                    lookup, served, list(response.prediction.notes)
                )
            self._semcache.log_round(lookup, kind="ask", served_sql=served)
        self._turns.append(
            ChatTurn(role="assistant", text=response.render(), sql=response.sql)
        )
        return response

    def give_feedback(
        self, text: str, highlight: Optional[str] = None
    ) -> AssistantResponse:
        """Send feedback on the last answer; returns the revised answer.

        ``highlight`` is a substring of the current SQL the user marked
        (the Figure 9 affordance). Raises :class:`~repro.errors.ReproError`
        when no question has been asked yet.
        """
        if self._question is None or self._sql is None:
            raise ReproError("give_feedback before any question was asked")
        self._turns.append(
            ChatTurn(role="user", text=text, highlight=highlight)
        )
        if self._semcache is not None:
            # Correction rounds are defined by *changing* the SQL: the
            # semantic cache must neither serve nor learn from them.
            lookup = self._semcache.record_feedback_bypass(
                self._tenant, self._database.schema, self._question
            )
            self._semcache.log_round(lookup, kind="feedback")

        feedback_type: Optional[str] = None
        if self._routing:
            feedback_type = self._router.route(text)
            feedback_demos = self._demo_store.for_type(feedback_type)
        else:
            feedback_demos = self._demo_store.generic()

        rag_demos = []
        if self._model.retriever is not None:
            rag_demos = self._model.retriever.retrieve(
                self._question, db_id=self._database.schema.name
            )
        prompt = feedback_prompt(
            schema=self._database.schema,
            question=self._question,
            previous_sql=self._sql,
            feedback=text,
            demos=rag_demos,
            feedback_demos=feedback_demos,
            feedback_type=feedback_type,
            highlight=highlight,
            context_key=f"chat:{len(self._turns)}",
        )
        completion = self._llm.complete(prompt)
        new_sql = completion.text.strip().rstrip(";")
        response = self._respond_with(new_sql, completion.notes)
        self._sql = new_sql
        self._turns.append(
            ChatTurn(role="assistant", text=response.render(), sql=new_sql)
        )
        return response

    def _respond_with(self, sql: str, notes: list[str]) -> AssistantResponse:
        """Build the four-part response for an already-generated SQL."""
        query: Optional[ast.Select] = None
        try:
            parsed = parse_query(sql)
            if isinstance(parsed, ast.Select):
                query = parsed
        except SqlError:
            query = None
        prediction = Nl2SqlPrediction(sql=sql, query=query, notes=list(notes))
        result: Optional[QueryResult] = None
        error: Optional[str] = None
        explanation = ""
        reformulation = ""
        if query is not None:
            try:
                executed = self._database.execute_ast(query)
                if isinstance(executed, QueryResult):
                    result = executed
            except SqlError as exc:
                error = str(exc)
            explanation = explanation_text(query)
            from repro.core.assistant import _reformulate

            reformulation = _reformulate(query)
        else:
            error = "the generated SQL could not be parsed"
        return AssistantResponse(
            question=self._question or "",
            prediction=prediction,
            result=result,
            reformulation=reformulation,
            explanation=explanation,
            error=error,
        )

    # -- persistence -------------------------------------------------------------

    def state(self) -> dict:
        """The conversation state as plain JSON-serializable data.

        Everything :meth:`restore_state` needs to resume the session:
        the transcript turns plus the active question/SQL pair. Feedback
        context keys are derived from the turn count, so a restored
        session continues the same deterministic key sequence.
        """
        return {
            "turns": [
                {
                    "role": turn.role,
                    "text": turn.text,
                    "sql": turn.sql,
                    "highlight": turn.highlight,
                }
                for turn in self._turns
            ],
            "question": self._question,
            "sql": self._sql,
        }

    def restore_state(self, state: dict) -> None:
        """Resume a conversation from a :meth:`state` snapshot."""
        self._turns = [
            ChatTurn(
                role=turn.get("role", "user"),
                text=turn.get("text", ""),
                sql=turn.get("sql"),
                highlight=turn.get("highlight"),
            )
            for turn in state.get("turns", [])
        ]
        self._question = state.get("question")
        self._sql = state.get("sql")

    # -- rendering ----------------------------------------------------------------

    def transcript(self) -> str:
        """The whole conversation as readable text."""
        blocks = []
        for turn in self._turns:
            speaker = "User" if turn.role == "user" else "Assistant"
            block = f"{speaker}: {turn.text}"
            if turn.highlight:
                block += f"\n  [highlighted: {turn.highlight}]"
            blocks.append(block)
        return "\n\n".join(blocks)
