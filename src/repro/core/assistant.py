"""The Assistant: the full four-part response the tool shows users.

Per Section 3.2, the Assistant returns (a) the execution result, (b) a
reformulation of the user query, (c) a step-by-step natural-language
explanation, and (d) the SQL itself behind a 'Show Source' affordance.
The simulated annotator is only ever shown these four things.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.explain import explanation_text
from repro.core.nl2sql import Nl2SqlModel, Nl2SqlPrediction
from repro.errors import SqlError
from repro.sql import ast
from repro.sql.comparison import summarize_result
from repro.sql.engine import Database
from repro.sql.executor import QueryResult
from repro.sql.printer import print_expression


@dataclass
class AssistantResponse:
    """What the user sees after asking a question."""

    question: str
    prediction: Nl2SqlPrediction
    result: Optional[QueryResult] = None
    reformulation: str = ""
    explanation: str = ""
    error: Optional[str] = None

    @property
    def sql(self) -> str:
        """The 'Show Source' content."""
        return self.prediction.sql

    def result_text(self) -> str:
        """The execution-result panel."""
        if self.error is not None:
            return "We could not run this query."
        if self.result is None or not self.result.rows:
            return "We found nothing for your query."
        return summarize_result(self.result)

    def render(self) -> str:
        """The full chat bubble, for examples and logs."""
        parts = [
            self.result_text(),
            "",
            "Based on your question, here is the crafted query:",
            self.reformulation,
            "",
            "Here is how we got the results:",
            self.explanation,
        ]
        return "\n".join(parts)


class Assistant:
    """Answers questions: NL2SQL, execution, reformulation, explanation."""

    def __init__(self, model: Nl2SqlModel) -> None:
        self._model = model

    @property
    def model(self) -> Nl2SqlModel:
        return self._model

    def answer(self, question: str, database: Database) -> AssistantResponse:
        """Produce the four-part response for a question."""
        prediction = self._model.predict(question, database)
        result: Optional[QueryResult] = None
        error: Optional[str] = None
        explanation = ""
        reformulation = ""
        if prediction.query is not None:
            try:
                executed = database.execute_ast(prediction.query)
                if isinstance(executed, QueryResult):
                    result = executed
            except SqlError as exc:
                error = str(exc)
            explanation = explanation_text(prediction.query)
            reformulation = _reformulate(prediction.query)
        else:
            error = "the generated SQL could not be parsed"
        return AssistantResponse(
            question=question,
            prediction=prediction,
            result=result,
            reformulation=reformulation,
            explanation=explanation,
            error=error,
        )


def _reformulate(query: ast.Select) -> str:
    """One-line restatement of what the query computes (part (b))."""
    first = query.items[0].expression
    if isinstance(first, ast.FunctionCall):
        name = first.name
        target = ""
        if first.args and isinstance(first.args[0], ast.ColumnRef):
            target = f" of {first.args[0].column}"
        table = _table_phrase(query)
        verb = {
            "COUNT": "Finds the count",
            "SUM": "Computes the total",
            "AVG": "Computes the average",
            "MIN": "Finds the minimum",
            "MAX": "Finds the maximum",
        }.get(name, f"Computes {name}")
        scope = " matching the conditions" if query.where is not None else ""
        return f"{verb}{target} of {table}{scope}."
    columns = ", ".join(
        print_expression(item.expression) for item in query.items
    )
    table = _table_phrase(query)
    scope = " matching the conditions" if query.where is not None else ""
    return f"Lists {columns} from {table}{scope}."


def _table_phrase(query: ast.Select) -> str:
    source = query.source
    while isinstance(source, ast.Join):
        source = source.left
    if isinstance(source, ast.TableRef):
        return f"the {source.name} records"
    return "the data"
