"""Feedback data model and the feedback-demonstration store.

The paper categorizes feedback into Add / Remove / Edit (Table 1) and keeps
a fixed set of revision demonstrations per type that are appended to the
NL2SQL prompt once the type is identified (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.llm.prompts import render_feedback_demo

ADD = "add"
REMOVE = "remove"
EDIT = "edit"

FEEDBACK_TYPES = (ADD, REMOVE, EDIT)

#: Table 1 of the paper: one exemplar feedback text per type.
FEEDBACK_TYPE_EXAMPLES: dict[str, str] = {
    ADD: "order the names in ascending order.",
    REMOVE: "do not give descriptions",
    EDIT: "we are in 2024",
}


@dataclass
class Highlight:
    """A user-marked span of the SQL text (or its explanation).

    Attributes:
        text: The highlighted substring.
        start: Character offset in the SQL the user saw.
        end: End offset (exclusive).
    """

    text: str
    start: int
    end: int


@dataclass
class Feedback:
    """One round of user feedback.

    Attributes:
        text: The natural-language feedback.
        highlight: Optional grounding highlight.
        intent_kind: Internal bookkeeping for evaluation/debugging — the
            delta kind the simulated user was trying to express. The FISQL
            pipeline never reads this field.
    """

    text: str
    highlight: Optional[Highlight] = None
    intent_kind: str = ""


@dataclass
class FeedbackDemoStore:
    """Fixed revision demonstrations per feedback type (Figure 5).

    ``for_type`` returns the rendered demonstration blocks appended to the
    NL2SQL prompt after routing; ``generic`` returns the smaller mixed set
    used by the no-routing ablation.
    """

    demos: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def default(cls) -> "FeedbackDemoStore":
        """The in-house demonstration set (mirrors the paper's examples)."""
        edit = [
            render_feedback_demo(
                question="how many audiences were created in January?",
                sql=(
                    "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment "
                    "WHERE createdTime >= '2023-01-01' and createdTime < "
                    "'2023-02-01'"
                ),
                feedback="we are in 2024",
                revised_sql=(
                    "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment "
                    "WHERE createdTime >= '2024-01-01' and createdTime < "
                    "'2024-02-01'"
                ),
            ),
            render_feedback_demo(
                question=(
                    "Show the name and the release year of the song by the "
                    "youngest singer."
                ),
                sql=(
                    "SELECT Name, Song_release_year FROM singer WHERE Age = "
                    "(SELECT min(Age) FROM singer)"
                ),
                feedback="Provide song name instead of singer name",
                revised_sql=(
                    "SELECT Song_Name, Song_release_year FROM singer WHERE "
                    "Age = (SELECT min(Age) FROM singer)"
                ),
            ),
        ]
        remove = [
            render_feedback_demo(
                question="List the segments created in March 2024.",
                sql=(
                    "SELECT segmentname, description FROM hkg_dim_segment "
                    "WHERE createdtime >= '2024-03-01' AND createdtime < "
                    "'2024-04-01'"
                ),
                feedback="do not give descriptions",
                revised_sql=(
                    "SELECT segmentname FROM hkg_dim_segment WHERE "
                    "createdtime >= '2024-03-01' AND createdtime < "
                    "'2024-04-01'"
                ),
            ),
        ]
        add = [
            render_feedback_demo(
                question="List the names of all destinations.",
                sql="SELECT destinationname FROM hkg_dim_destination",
                feedback="order the names in ascending order.",
                revised_sql=(
                    "SELECT destinationname FROM hkg_dim_destination "
                    "ORDER BY destinationname ASC"
                ),
            ),
            render_feedback_demo(
                question="How many datasets do we have?",
                sql="SELECT COUNT(*) FROM hkg_dim_dataset",
                feedback="only include datasets whose status is 'active'",
                revised_sql=(
                    "SELECT COUNT(*) FROM hkg_dim_dataset WHERE status = "
                    "'active'"
                ),
            ),
        ]
        return cls(demos={ADD: add, REMOVE: remove, EDIT: edit})

    def for_type(self, feedback_type: str) -> list[str]:
        """All demonstrations for one feedback type."""
        return list(self.demos.get(feedback_type, []))

    def generic(self) -> list[str]:
        """One demonstration per type — the no-routing ablation's context."""
        return [blocks[0] for blocks in self.demos.values() if blocks]
