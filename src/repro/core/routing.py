"""Feedback-type identification (the paper's "routing" step).

A few-shot-prompted classifier mapping free-form feedback to Add / Remove /
Edit. The simulated classifier uses lexical cues — which is also how the
few-shot LLM classifier behaves in practice on this short-text task.
"""

from __future__ import annotations

import re

from repro import obs
from repro.core.feedback import ADD, EDIT, FEEDBACK_TYPE_EXAMPLES, REMOVE
from repro.llm.interface import ChatModel
from repro.llm.prompts import routing_prompt

_REMOVE_CUES = (
    r"\bdo not\b",
    r"\bdon't\b",
    r"\bremove\b",
    r"\bdrop\b",
    r"\bwithout\b",
    r"\bexclude\b",
    r"\bomit\b",
    r"\bno need\b",
    r"\bget rid of\b",
    r"\bskip the\b",
    r"\bleave out\b",
)

_EDIT_CUES = (
    r"\binstead of\b",
    r"\bshould be\b",
    r"\bchange\b",
    r"\bwe are in\b",
    r"\bit is \d{4}\b",
    r"\bmeans?\b",
    r"\breplace\b",
    r"\bwrong\b",
    r"\bnot the\b",
    r"\buse the\b",
    r"\bswitch\b",
    r"\bactually\b",
    r"\brather than\b",
    r"\bdescending\b",
    r"\bascending\b.*\bnot\b",
    r"\bsum\b.*\binstead\b",
    r"\bdistinct\b.*\bcount\b",
    r"\bcount\b.*\bdistinct\b",
)

_ADD_CUES = (
    r"\balso\b",
    r"\badd\b",
    r"\binclude\b",
    r"\bonly\b",
    r"\border the\b",
    r"\bsort the\b",
    r"\bgroup\b",
    r"\blimit\b",
    r"\bfilter\b",
    r"\bjoin\b",
    r"\bremove duplicates\b",
    r"\beach .* only once\b",
    r"\brestrict\b",
)


def classify_feedback(text: str) -> str:
    """Rule-of-thumb classification used by the simulated LLM."""
    lowered = text.lower()
    # "remove duplicates" asks to ADD a DISTINCT, not to remove a clause.
    if re.search(r"\bremove duplicates\b", lowered) or re.search(
        r"\bonly once\b", lowered
    ):
        return ADD
    for cue in _REMOVE_CUES:
        if re.search(cue, lowered):
            return REMOVE
    for cue in _EDIT_CUES:
        if re.search(cue, lowered):
            return EDIT
    for cue in _ADD_CUES:
        if re.search(cue, lowered):
            return ADD
    return EDIT


class FeedbackRouter:
    """Routes feedback to a type by prompting the (simulated) LLM."""

    def __init__(self, llm: ChatModel) -> None:
        self._llm = llm
        self._examples = [
            (text, label.capitalize())
            for label, text in FEEDBACK_TYPE_EXAMPLES.items()
        ]

    def route(self, feedback_text: str) -> str:
        """Classify feedback into add / remove / edit."""
        with obs.span("routing.route") as sp:
            prompt = routing_prompt(feedback_text, examples=self._examples)
            completion = self._llm.complete(prompt)
            label = completion.text.strip().lower()
            if label not in (ADD, REMOVE, EDIT):
                label = EDIT
            obs.count("routing.decisions", decision=label)
            sp.set("decision", label)
            return label
