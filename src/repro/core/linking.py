"""Schema linking: mapping question phrases to tables and columns.

The linker sees exactly what a prompt-driven LLM sees: the schema's
identifiers (tokenized, e.g. ``hkg_dim_segment`` → "hkg dim segment") and
the human-readable column names. It does *not* see the synonym lists on
schema objects — those model what users say, and reach the model only
through the glossary entries of retrieved demonstrations (in-context
learning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.nlp.similarity import string_similarity
from repro.nlp.stem import stem
from repro.nlp.tokenize import tokenize
from repro.sql.schema import Column, DatabaseSchema, Table

#: Tokens in warehouse-style identifiers that carry no entity meaning.
_NOISE_TOKENS = frozenset({"hkg", "dim", "fact", "tbl", "t"})


def identifier_tokens(identifier: str) -> list[str]:
    """Split an identifier into meaningful, stemmed tokens."""
    raw = identifier.replace("_", " ").lower()
    return [stem(token) for token in tokenize(raw) if token not in _NOISE_TOKENS]


@dataclass
class TableLink:
    """A phrase resolved to a table."""

    table: Table
    score: float
    phrase: str


@dataclass
class ColumnLink:
    """A phrase resolved to a column of a known table."""

    table: Table
    column: Column
    score: float
    phrase: str


class SchemaLinker:
    """Links question phrases to a database schema."""

    #: Minimum score for a link to count as confident.
    TABLE_THRESHOLD = 0.5
    COLUMN_THRESHOLD = 0.45

    def __init__(self, schema: DatabaseSchema) -> None:
        self._schema = schema
        self._table_tokens = {
            table.key: set(identifier_tokens(table.name)) for table in schema.tables
        }

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    # -- tables -------------------------------------------------------------

    def link_table(self, phrase: str) -> Optional[TableLink]:
        """Best table for a phrase, or None below threshold."""
        best: Optional[TableLink] = None
        phrase_stems = {stem(token) for token in tokenize(phrase)}
        for table in sorted(self._schema.tables, key=lambda t: t.key):
            score = self._table_score(table, phrase, phrase_stems)
            if best is None or score > best.score:
                best = TableLink(table=table, score=score, phrase=phrase)
        if best is not None and best.score >= self.TABLE_THRESHOLD:
            return best
        return None

    def guess_table(self, phrase: str) -> TableLink:
        """Best table even when no confident link exists (the model's guess).

        Mirrors an LLM that must output *something*: the argmax table with
        alphabetical tie-breaking, however low the score.
        """
        best: Optional[TableLink] = None
        phrase_stems = {stem(token) for token in tokenize(phrase)}
        for table in sorted(self._schema.tables, key=lambda t: t.key):
            score = self._table_score(table, phrase, phrase_stems)
            if best is None or score > best.score:
                best = TableLink(table=table, score=score, phrase=phrase)
        assert best is not None, "schema has no tables"
        return best

    def _table_score(
        self, table: Table, phrase: str, phrase_stems: set[str]
    ) -> float:
        table_stems = self._table_tokens[table.key]
        if not phrase_stems:
            return 0.0
        overlap = phrase_stems & table_stems
        containment = len(overlap) / len(phrase_stems)
        # Character-level similarity only counts when it is strong evidence
        # (near-identical identifiers); weak edit similarity between
        # unrelated words is noise and must not inform the link.
        sim = string_similarity(phrase, table.name.replace("_", " "))
        if sim < 0.62:
            sim = 0.0
        return max(containment, sim)

    # -- columns -------------------------------------------------------------

    def link_column(self, table: Table, phrase: str) -> Optional[ColumnLink]:
        """Best column of ``table`` for a phrase, or None below threshold."""
        best = self._best_column(table, phrase)
        if best is not None and best.score >= self.COLUMN_THRESHOLD:
            return best
        return None

    def _best_column(self, table: Table, phrase: str) -> Optional[ColumnLink]:
        best: Optional[ColumnLink] = None
        for column in table.columns:
            score = self.column_score(column, phrase)
            if best is None or score > best.score:
                best = ColumnLink(
                    table=table, column=column, score=score, phrase=phrase
                )
        return best

    @staticmethod
    def column_score(column: Column, phrase: str) -> float:
        """Similarity between a phrase and one column's names."""
        candidates = [column.name, column.nl_name]
        score = max(string_similarity(phrase, cand) for cand in candidates)
        # Exact identifier match (ignoring separators) is decisive.
        squashed_phrase = "".join(tokenize(phrase))
        squashed_column = column.name.replace("_", "").lower()
        if squashed_phrase == squashed_column:
            return 1.0
        return score

    def name_column(self, table: Table) -> Optional[Column]:
        """The table's display-name column (``name``, ``*name``, or a
        common display column such as ``title``)."""
        for column in table.columns:
            if column.key == "name":
                return column
        for column in table.columns:
            if column.key.endswith("name") and not column.primary_key:
                return column
        for column in table.columns:
            if column.key in ("title", "label", "headline"):
                return column
        return None

    def date_column(self, table: Table, hint: str = "") -> Optional[Column]:
        """The table's best event-date column, optionally biased by a hint.

        The hint is the verb near the date phrase ("created", "ingested").
        """
        from repro.sql.types import DataType

        date_columns = [c for c in table.columns if c.dtype is DataType.DATE]
        if not date_columns:
            return None
        if hint:
            hint_stem = stem(hint)
            for column in date_columns:
                if hint_stem in identifier_tokens(column.name):
                    return column
        return date_columns[0]

    def description_column(self, table: Table) -> Optional[Column]:
        for column in table.columns:
            if "description" in column.key:
                return column
        return None

    def status_column(self, table: Table) -> Optional[Column]:
        for column in table.columns:
            if "status" in column.key:
                return column
        return None

    def column_anywhere(self, phrase: str) -> Optional[ColumnLink]:
        """Best column across all tables (used when no table is anchored)."""
        best: Optional[ColumnLink] = None
        for table in sorted(self._schema.tables, key=lambda t: t.key):
            link = self._best_column(table, phrase)
            if link is not None and (best is None or link.score > best.score):
                best = link
        if best is not None and best.score >= self.COLUMN_THRESHOLD:
            return best
        return None
