"""FISQL core: the paper's contribution (feedback-infused SQL generation)."""

from repro.core.assistant import Assistant, AssistantResponse
from repro.core.chat import ChatSession, ChatTurn
from repro.core.dynamic_demos import (
    DynamicFeedbackDemoStore,
    FeedbackDemonstration,
    query_structure,
)
from repro.core.editor import FeedbackEditor
from repro.core.explain import explain_query, explanation_text
from repro.core.feedback import (
    ADD,
    EDIT,
    FEEDBACK_TYPE_EXAMPLES,
    FEEDBACK_TYPES,
    REMOVE,
    Feedback,
    FeedbackDemoStore,
    Highlight,
)
from repro.core.linking import SchemaLinker
from repro.core.nl2sql import Nl2SqlModel, Nl2SqlPrediction
from repro.core.retrieval import DemonstrationRetriever
from repro.core.rewrite import QueryRewriteBaseline, RewriteStep
from repro.core.routing import FeedbackRouter, classify_feedback
from repro.core.semparse import ParserConfig, SemanticParser
from repro.core.session import CorrectionOutcome, FisqlPipeline, RoundRecord
from repro.core.user import AnnotatorConfig, SimulatedAnnotator

__all__ = [
    "ADD",
    "EDIT",
    "FEEDBACK_TYPES",
    "FEEDBACK_TYPE_EXAMPLES",
    "REMOVE",
    "AnnotatorConfig",
    "Assistant",
    "AssistantResponse",
    "ChatSession",
    "ChatTurn",
    "CorrectionOutcome",
    "DemonstrationRetriever",
    "DynamicFeedbackDemoStore",
    "Feedback",
    "FeedbackDemoStore",
    "FeedbackDemonstration",
    "FeedbackEditor",
    "FeedbackRouter",
    "FisqlPipeline",
    "Highlight",
    "Nl2SqlModel",
    "Nl2SqlPrediction",
    "ParserConfig",
    "QueryRewriteBaseline",
    "RewriteStep",
    "RoundRecord",
    "SchemaLinker",
    "SemanticParser",
    "SimulatedAnnotator",
    "classify_feedback",
    "explain_query",
    "explanation_text",
    "query_structure",
]
