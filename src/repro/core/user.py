"""Simulated feedback-providing user (the paper's annotator stand-in).

The paper's feedback was written by the authors using only the information
the tool shows: the question, the generated SQL, its natural-language
explanation, and the execution result — never the gold SQL or schema
internals. The simulator enforces the same protocol:

* It knows the *intent* (the gold query's semantics — exactly what a user
  who asked the question knows) and compares the visible behaviour against
  it via the structural diff (:mod:`repro.sql.analysis`).
* It verbalizes **one** error per round, as the paper observed users doing.
* It is imperfect on purpose, with calibrated rates of *vague* feedback
  (terse, ungrounded — "change to 2024") and *misaligned* feedback
  (misdiagnosing the problem), the two residual-error causes in the
  paper's error analysis besides multi-error queries.

All stochasticity is deterministic per (example, round) via stable hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.feedback import Feedback, Highlight
from repro.sql import ast
from repro.sql.analysis import QueryDelta, diff_queries
from repro.sql.printer import print_expression, print_select
from repro.sql.schema import DatabaseSchema
from repro.util import stable_choice, stable_fraction

#: Delta kinds the annotator addresses first when several are present.
_PRIORITY = ("table", "select", "where", "group", "order", "distinct", "limit")


@dataclass
class AnnotatorConfig:
    """Calibrated imperfection rates (all deterministic per example)."""

    #: Probability a given error example gets annotated at all (the paper
    #: annotated 101 of 243 SPIDER errors).
    annotate_rate: float = 1.0
    #: Probability the feedback is terse/ungrounded ("change to 2024").
    vague_rate: float = 0.10
    #: Probability the feedback misdiagnoses the error entirely.
    misaligned_rate: float = 0.10
    #: Cap on how many distinct errors a query may contain and still be
    #: considered annotatable from the visible information.
    max_expressible_deltas: int = 3


class SimulatedAnnotator:
    """Produces natural-language feedback for incorrect SQL."""

    def __init__(
        self,
        schema: DatabaseSchema,
        config: Optional[AnnotatorConfig] = None,
        salt: str = "annotator",
    ) -> None:
        self._schema = schema
        self._config = config or AnnotatorConfig()
        self._salt = salt

    # -- annotatability (the 101-of-243 selection) ------------------------------

    def can_annotate(
        self, example_id: str, gold: ast.Select, predicted: ast.Select
    ) -> bool:
        """Whether feedback can be written from the visible information."""
        deltas = diff_queries(gold, predicted)
        if not deltas:
            return False
        if any(d.kind == "structure" for d in deltas):
            return False
        if len(deltas) > self._config.max_expressible_deltas:
            return False
        if self._config.annotate_rate < 1.0:
            keep = stable_fraction(self._salt, "annotate", example_id)
            if keep >= self._config.annotate_rate:
                return False
        return True

    # -- feedback generation --------------------------------------------------------

    def give_feedback(
        self,
        example_id: str,
        question: str,
        gold: ast.Select,
        predicted: ast.Select,
        round_index: int = 0,
        use_highlights: bool = False,
    ) -> Optional[Feedback]:
        """Produce one round of feedback, or None when satisfied/stuck."""
        deltas = diff_queries(gold, predicted)
        if not deltas:
            return None
        delta = self._pick_delta(deltas)

        misaligned = (
            stable_fraction(self._salt, "misaligned", example_id)
            < self._config.misaligned_rate
        )
        if misaligned:
            text = stable_choice(
                [
                    "these numbers do not look right to me",
                    "this is not what I asked for",
                    "the result seems off, can you double check",
                ],
                self._salt,
                "misaligned-text",
                example_id,
                round_index,
            )
            return Feedback(text=text, intent_kind="misaligned")

        vague = (
            stable_fraction(self._salt, "vague", example_id)
            < self._config.vague_rate
        )
        feedback = self._verbalize(delta, question, predicted, vague)
        if feedback is None:
            return None
        if use_highlights:
            feedback.highlight = self._make_highlight(delta, predicted)
        return feedback

    def _pick_delta(self, deltas: list[QueryDelta]) -> QueryDelta:
        def rank(delta: QueryDelta) -> tuple[int, int]:
            try:
                base = _PRIORITY.index(delta.kind)
            except ValueError:
                base = len(_PRIORITY)
            # Among missing tables, users describe the *relationship* —
            # which lives in the fact/link table (the one with FKs).
            fact_bonus = 1
            if delta.kind == "table" and delta.action == "add":
                name = delta.gold if isinstance(delta.gold, str) else ""
                if self._schema.has_table(name) and self._schema.table(
                    name
                ).foreign_keys:
                    fact_bonus = 0
            return (base, fact_bonus)

        return sorted(deltas, key=rank)[0]

    # -- verbalization ------------------------------------------------------------

    def _verbalize(
        self,
        delta: QueryDelta,
        question: str,
        predicted: ast.Select,
        vague: bool,
    ) -> Optional[Feedback]:
        handler = getattr(self, f"_v_{delta.kind}", None)
        if handler is None:
            return None
        return handler(delta, question, predicted, vague)

    def _column_nl(self, table_name: Optional[str], column_name: str) -> str:
        if table_name and self._schema.has_table(table_name):
            table = self._schema.table(table_name)
            if table.has_column(column_name):
                return table.column(column_name).nl_name
        return column_name.replace("_", " ")

    def _v_select(self, delta, question, predicted, vague):
        table_name = _main_table_name(predicted)
        if delta.action == "edit":
            gold_expr = delta.gold.expression
            pred_expr = delta.pred.expression
            # COUNT vs COUNT DISTINCT / SUM — aggregate-level feedback.
            if isinstance(gold_expr, ast.FunctionCall) and isinstance(
                pred_expr, ast.FunctionCall
            ):
                if (
                    gold_expr.name == "COUNT"
                    and pred_expr.name == "COUNT"
                    and gold_expr.distinct
                    and not pred_expr.distinct
                ):
                    column = _call_column(gold_expr) or "value"
                    nl = self._column_nl(table_name, column)
                    return Feedback(
                        text=f"count each {nl} only once, not every row",
                        intent_kind="count_distinct",
                    )
                if gold_expr.name == "SUM" and pred_expr.name == "COUNT":
                    column = _call_column(gold_expr) or "value"
                    nl = self._column_nl(table_name, column)
                    return Feedback(
                        text=f"sum the {nl} instead of counting rows",
                        intent_kind="sum_not_count",
                    )
            gold_col = _expr_column(gold_expr)
            pred_col = _expr_column(pred_expr)
            if gold_col and pred_col:
                gold_nl = self._column_nl(table_name, gold_col)
                pred_nl = self._column_nl(table_name, pred_col)
                return Feedback(
                    text=f"provide the {gold_nl} instead of the {pred_nl}",
                    intent_kind="select_edit",
                )
            return None
        if delta.action == "remove":
            pred_col = _expr_column(delta.pred.expression)
            if pred_col is None:
                return None
            nl = self._column_nl(table_name, pred_col)
            plural = nl if nl.endswith("s") else nl + "s"
            return Feedback(
                text=f"do not give {plural}", intent_kind="select_remove"
            )
        if delta.action == "add":
            gold_col = _expr_column(delta.gold.expression)
            if gold_col is None:
                return None
            nl = self._column_nl(table_name, gold_col)
            return Feedback(
                text=f"also show the {nl}", intent_kind="select_add"
            )
        return None

    def _v_where(self, delta, question, predicted, vague):
        table_name = _main_table_name(predicted)
        if delta.action in ("edit", "add"):
            gold_cond = delta.gold
            # Year corrections get the paper's canonical phrasing.
            year = _condition_year(gold_cond)
            if year is not None and delta.action == "edit":
                if vague:
                    return Feedback(
                        text=f"change to {year}", intent_kind="year_vague"
                    )
                return Feedback(
                    text=f"we are in {year}", intent_kind="year"
                )
            column, value = _condition_column_value(gold_cond)
            if column is not None and value is not None:
                nl = self._column_nl(table_name, column)
                if vague:
                    return Feedback(
                        text=f"change to '{value}'", intent_kind="filter_vague"
                    )
                phrase = stable_choice(
                    [
                        f"only include the ones whose {nl} is '{value}'",
                        f"I meant only those with {nl} '{value}'",
                        f"that means the {nl} is '{value}'",
                    ],
                    self._salt,
                    "filter-phrase",
                    question,
                    column,
                )
                return Feedback(text=phrase, intent_kind="filter")
            return None
        if delta.action == "remove":
            column, _value = _condition_column_value(delta.pred)
            if column is None:
                return None
            nl = self._column_nl(table_name, column)
            return Feedback(
                text=f"remove the condition on {nl}", intent_kind="filter_remove"
            )
        return None

    def _v_table(self, delta, question, predicted, vague):
        if delta.action != "edit" or not isinstance(delta.gold, str):
            # Missing join tables are expressed through the fact relation.
            if delta.action == "add" and isinstance(delta.gold, str):
                return self._v_fact_table(delta, question)
            return None
        gold_table = delta.gold
        if self._schema.has_table(gold_table):
            nl = self._schema.table(gold_table).nl_name
        else:
            nl = gold_table.replace("_", " ")
        jargon = _jargon_word(question)
        if jargon:
            return Feedback(
                text=f"by {jargon} I mean the {nl} table",
                intent_kind="table_edit",
            )
        return Feedback(
            text=f"use the {nl} table", intent_kind="table_edit"
        )

    def _v_fact_table(self, delta, question):
        table_name = delta.gold
        if not self._schema.has_table(table_name):
            return None
        table = self._schema.table(table_name)
        if not table.foreign_keys:
            return None
        nl = table.nl_name
        return Feedback(
            text=(
                f"they are linked through the {nl} table, "
                f"look at the entries there"
            ),
            intent_kind="fact_join",
        )

    def _v_group(self, delta, question, predicted, vague):
        if delta.action == "add":
            column = _expr_column(delta.gold)
            if column is None:
                return None
            nl = self._column_nl(_main_table_name(predicted), column)
            return Feedback(
                text=f"break the numbers down by {nl}", intent_kind="group_add"
            )
        return None

    def _v_order(self, delta, question, predicted, vague):
        if delta.action == "add":
            items = delta.gold
            if not items:
                return None
            column = _expr_column(items[0].expression) or "names"
            nl = self._column_nl(_main_table_name(predicted), column)
            direction = (
                "ascending"
                if items[0].order is ast.SortOrder.ASC
                else "descending"
            )
            return Feedback(
                text=f"order the {nl}s in {direction} order.",
                intent_kind="order_add",
            )
        if delta.action == "edit":
            items = delta.gold
            direction = (
                "descending"
                if items and items[0].order is ast.SortOrder.DESC
                else "ascending"
            )
            return Feedback(
                text=f"sort in {direction} order, please",
                intent_kind="order_edit",
            )
        if delta.action == "remove":
            return Feedback(
                text="no need to sort the results", intent_kind="order_remove"
            )
        return None

    def _v_distinct(self, delta, question, predicted, vague):
        if delta.action == "add":
            return Feedback(
                text="remove duplicates from the results",
                intent_kind="distinct_add",
            )
        return Feedback(
            text="keep all rows, including duplicates",
            intent_kind="distinct_remove",
        )

    def _v_limit(self, delta, question, predicted, vague):
        if delta.action in ("add", "edit"):
            return Feedback(
                text=f"limit it to {delta.gold}", intent_kind="limit"
            )
        return Feedback(
            text="remove the limit, show all of them", intent_kind="limit_remove"
        )

    # -- highlights -------------------------------------------------------------

    def _make_highlight(
        self, delta: QueryDelta, predicted: ast.Select
    ) -> Optional[Highlight]:
        """Highlight the SQL span containing the part being discussed."""
        sql_text = print_select(predicted)
        target: Optional[str] = None
        if delta.kind == "where" and delta.pred is not None:
            target = print_expression(delta.pred)
        elif delta.kind == "where" and delta.pred is None:
            # Nothing wrong is *present*; the user highlights the FROM
            # clause to show where the restriction belongs.
            table_name = _main_table_name(predicted)
            if table_name is not None:
                target = f"FROM {table_name}"
        elif delta.kind == "select" and delta.pred is not None:
            target = print_expression(delta.pred.expression)
        elif delta.kind == "order" and delta.pred:
            target = print_expression(delta.pred[0].expression)
        if target is None:
            return None
        start = sql_text.find(target)
        if start == -1:
            return None
        return Highlight(text=target, start=start, end=start + len(target))


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _main_table_name(query: ast.Select) -> Optional[str]:
    source = query.source
    while isinstance(source, ast.Join):
        source = source.left
    if isinstance(source, ast.TableRef):
        return source.name
    return None


def _expr_column(expr) -> Optional[str]:
    if isinstance(expr, ast.ColumnRef):
        return expr.column
    if isinstance(expr, ast.FunctionCall):
        return _call_column(expr)
    return None


def _call_column(call: ast.FunctionCall) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.ColumnRef):
        return call.args[0].column
    return None


def _condition_year(condition) -> Optional[str]:
    """The year of a date-literal comparison, if that is what it is."""
    import re

    if not isinstance(condition, ast.Expression):
        return None
    for node in ast.walk_expressions(condition):
        if isinstance(node, ast.Literal) and isinstance(node.value, str):
            match = re.match(r"^((?:19|20)\d{2})-\d{2}-\d{2}", node.value)
            if match:
                return match.group(1)
    return None


def _condition_column_value(condition):
    """(column, literal value) of a simple comparison condition."""
    if isinstance(condition, ast.BinaryOp) and condition.op.is_comparison:
        if isinstance(condition.left, ast.ColumnRef) and isinstance(
            condition.right, ast.Literal
        ):
            return condition.left.column, condition.right.value
    if isinstance(condition, ast.Like) and isinstance(
        condition.operand, ast.ColumnRef
    ):
        if isinstance(condition.pattern, ast.Literal):
            return condition.operand.column, condition.pattern.value
    return None, None


def _jargon_word(question: str) -> Optional[str]:
    """The jargon noun in the question, if recognizable."""
    lowered = question.lower()
    for word in ("audiences", "audience"):
        if word in lowered:
            return word
    return None
