"""The NL2SQL model wrapper: prompt assembly + (simulated) LLM call.

``Nl2SqlModel`` is the paper's base text-to-SQL system: zero-shot when no
retriever is attached (Figure 1's setup), RAG few-shot when one is (the
Assistant's in-house pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro import obs
from repro.core.retrieval import DemonstrationRetriever
from repro.errors import LLMError, SqlError
from repro.llm.dispatch import settle_batch
from repro.llm.interface import ChatModel, Completion
from repro.llm.prompts import nl2sql_prompt
from repro.llm.simulated import SimulatedLLM
from repro.sql import ast
from repro.sql.engine import Database
from repro.sql.parser import parse_query


@dataclass
class Nl2SqlPrediction:
    """One NL2SQL prediction.

    Attributes:
        sql: The generated SQL text.
        query: The parsed AST (None when the text does not parse).
        notes: Model-side notes (assumptions it made).
        demos_used: How many demonstrations were in the prompt.
    """

    sql: str
    query: Optional[ast.Select] = None
    notes: list[str] = field(default_factory=list)
    demos_used: int = 0

    @property
    def parse_ok(self) -> bool:
        return self.query is not None


class Nl2SqlModel:
    """Base NL2SQL model: prompt → (simulated) LLM → SQL."""

    def __init__(
        self,
        llm: Optional[ChatModel] = None,
        retriever: Optional[DemonstrationRetriever] = None,
    ) -> None:
        self._llm = llm or SimulatedLLM()
        self._retriever = retriever

    @property
    def llm(self) -> ChatModel:
        return self._llm

    @property
    def retriever(self) -> Optional[DemonstrationRetriever]:
        return self._retriever

    def predict(self, question: str, database: Database) -> Nl2SqlPrediction:
        """Generate SQL for a question against a database."""
        with obs.span("nl2sql.predict", db=database.schema.name) as sp, obs.timer(
            "nl2sql.latency_ms"
        ):
            prediction = self._predict(question, database)
            obs.count("nl2sql.predictions")
            if not prediction.parse_ok:
                obs.count("nl2sql.parse_failures")
            sp.set("parse_ok", prediction.parse_ok)
            sp.set("demos_used", prediction.demos_used)
            return prediction

    def predict_batch(
        self, items: Sequence[tuple[str, Database]]
    ) -> "list[Union[Nl2SqlPrediction, LLMError]]":
        """Batch prediction with per-item settled outcomes.

        All prompts are assembled up front (retrieval per item) and
        dispatched through :func:`repro.llm.dispatch.settle_batch`, so the
        LLM sees one batch rather than N calls. Each slot settles to the
        item's :class:`Nl2SqlPrediction` or the
        :class:`~repro.errors.LLMError` it failed with, in item order.
        """
        items = list(items)
        with obs.span("nl2sql.predict_batch", n=len(items)) as sp:
            prompts = []
            demo_counts = []
            for question, database in items:
                demos = []
                if self._retriever is not None:
                    demos = self._retriever.retrieve(
                        question, db_id=database.schema.name
                    )
                demo_counts.append(len(demos))
                prompts.append(
                    nl2sql_prompt(database.schema, question, demos=demos)
                )
            outcomes = settle_batch(self._llm, prompts)
            results: list[Union[Nl2SqlPrediction, LLMError]] = []
            failures = 0
            for outcome, demos_used in zip(outcomes, demo_counts):
                if isinstance(outcome, Completion):
                    prediction = self._parse_completion(outcome, demos_used)
                    obs.count("nl2sql.predictions")
                    if not prediction.parse_ok:
                        obs.count("nl2sql.parse_failures")
                    results.append(prediction)
                else:
                    failures += 1
                    results.append(outcome)
            sp.set("failures", failures)
            return results

    def _predict(self, question: str, database: Database) -> Nl2SqlPrediction:
        demos = []
        if self._retriever is not None:
            demos = self._retriever.retrieve(
                question, db_id=database.schema.name
            )
        prompt = nl2sql_prompt(database.schema, question, demos=demos)
        completion = self._llm.complete(prompt)
        return self._parse_completion(completion, len(demos))

    def _parse_completion(
        self, completion: Completion, demos_used: int
    ) -> Nl2SqlPrediction:
        sql = completion.text.strip().rstrip(";")
        query: Optional[ast.Select] = None
        try:
            parsed = parse_query(sql)
            if isinstance(parsed, ast.Select):
                query = parsed
        except SqlError:
            query = None
        return Nl2SqlPrediction(
            sql=sql,
            query=query,
            notes=list(completion.notes),
            demos_used=demos_used,
        )
