"""The feedback editor: turns NL feedback into anchored AST edits.

This module implements the behaviour of the (simulated) NL2SQL model when
prompted with the Figure 6 feedback prompt: the previous SQL query anchors
the revision, and the feedback selects a typed edit
(:mod:`repro.sql.edits`) to apply to it.

Routing matters here exactly as in the paper: with routing, the prompt
carries *all* demonstrations for the identified feedback type, so every
revision pattern of that type is covered; without routing only a small
generic demonstration set fits, and a calibrated fraction of feedback
phrasings fall outside its coverage (the model produces no usable edit on
that round). The miss is deterministic per (context, feedback) so every
experiment reproduces exactly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.feedback import ADD, EDIT, REMOVE, Feedback
from repro.core.linking import SchemaLinker
from repro.errors import EditError
from repro.nlp.tokenize import quoted_strings
from repro.sql import ast
from repro.sql.analysis import conjuncts
from repro.sql.edits import (
    AddSelectItem,
    AddWhereConjunct,
    EditOperation,
    RemoveSelectItem,
    RemoveWhereConjunct,
    ReplaceAggregate,
    ReplaceColumn,
    ReplaceLiteral,
    ReplaceQuery,
    ReplaceTable,
    ReplaceWhereConjunct,
    SetDistinct,
    SetLimit,
    SetOrderBy,
)
from repro.sql.schema import DatabaseSchema, Table
from repro.util import stable_fraction

_YEAR_RE = re.compile(r"\b((?:19|20)\d{2})\b")


@dataclass
class EditCandidate:
    """One possible interpretation of the feedback."""

    operation: EditOperation
    score: float
    feedback_type: str
    pattern: str


class FeedbackEditor:
    """Interprets feedback against the previous query."""

    #: Probability that the demonstration context fails to cover the
    #: feedback's phrasing on a given round — the paper's residual-error
    #: cause (b), "inability of the approaches to interpret user feedback".
    #: Routing retrieves *all* demonstrations of the identified type, so its
    #: coverage gap is smaller than the generic no-routing context's.
    ROUTED_MISS_RATE = 0.08
    UNROUTED_MISS_RATE = 0.10

    #: Candidates below this score are not confident enough to act on.
    MIN_USABLE_SCORE = 0.5

    def __init__(self, schema: DatabaseSchema) -> None:
        self._schema = schema
        self._linker = SchemaLinker(schema)

    # -- public API ----------------------------------------------------------------

    def interpret(
        self,
        feedback: Feedback,
        previous: ast.Select,
        question: str,
        feedback_type: Optional[str] = None,
        context_key: str = "",
    ) -> Optional[EditOperation]:
        """Choose the edit operation the feedback asks for.

        Args:
            feedback: The user's feedback (text + optional highlight).
            previous: The previous turn's query AST.
            question: The original question (for grounding values).
            feedback_type: The routed type, or None for the no-routing
                ablation.
            context_key: Stable key identifying (example, round) for the
                deterministic coverage model.

        Returns:
            The chosen operation, or None when the feedback could not be
            interpreted (the model returns the query unchanged).
        """
        candidates = self._candidates(feedback, previous, question)
        if not candidates:
            return None

        miss = stable_fraction("demo-coverage", context_key, feedback.text)
        if feedback_type is not None:
            if miss < self.ROUTED_MISS_RATE:
                return None
            typed = [c for c in candidates if c.feedback_type == feedback_type]
            pool = typed or candidates
        else:
            if miss < self.UNROUTED_MISS_RATE:
                return None
            pool = candidates

        pool = [c for c in pool if c.score >= self.MIN_USABLE_SCORE]
        if not pool:
            return None
        pool.sort(key=lambda c: (-c.score, c.pattern))
        return pool[0].operation

    def apply(
        self, operation: EditOperation, previous: ast.Select
    ) -> Optional[ast.Select]:
        """Apply an operation; None when it cannot anchor to the query."""
        try:
            return operation.apply(previous)
        except EditError:
            return None

    # -- candidate generation -----------------------------------------------------------

    def _candidates(
        self, feedback: Feedback, previous: ast.Select, question: str
    ) -> list[EditCandidate]:
        text = feedback.text.strip().lower()
        main_table = self._main_table(previous)
        out: list[EditCandidate] = []
        rules = (
            self._r_year,
            self._r_instead_of,
            self._r_remove_select,
            self._r_add_select,
            self._r_order,
            self._r_add_filter,
            self._r_remove_filter,
            self._r_count_distinct,
            self._r_sum_not_count,
            self._r_distinct_rows,
            self._r_replace_table,
            self._r_fact_join,
            self._r_limit,
            self._r_change_to,
        )
        for rule in rules:
            out.extend(rule(text, feedback, previous, question, main_table))
        return out

    def _main_table(self, query: ast.Select) -> Optional[Table]:
        source = query.source
        while isinstance(source, ast.Join):
            source = source.left
        if isinstance(source, ast.TableRef) and self._schema.has_table(source.name):
            return self._schema.table(source.name)
        return None

    # .. rules .....................................................................

    def _r_year(self, text, feedback, previous, question, main_table):
        """'we are in 2024' / 'it is 2024' / 'use 2024' → edit date years."""
        years = _YEAR_RE.findall(text)
        if not years:
            return []
        new_year = years[-1]
        old_years = _date_years_in(previous)
        old_years = [y for y in old_years if y != new_year]
        if not old_years:
            return []
        if feedback.highlight is not None:
            highlighted = _YEAR_RE.findall(feedback.highlight.text)
            narrowed = [y for y in old_years if y in highlighted]
            if narrowed:
                old_years = narrowed
        operation = ReplaceLiteral(old=old_years[0], new=new_year)
        return [
            EditCandidate(
                operation=operation, score=0.95, feedback_type=EDIT, pattern="year"
            )
        ]

    def _r_instead_of(self, text, feedback, previous, question, main_table):
        """'provide X instead of Y' → replace column (or value)."""
        match = re.search(
            r"(?:provide|use|show|give|select|i want)?\s*(?:the )?(.+?) "
            r"(?:instead of|rather than|not) (?:the )?(.+)$",
            text,
        )
        if match is None or "instead of" not in text and "rather than" not in text:
            return []
        new_phrase = match.group(1).strip()
        old_phrase = match.group(2).strip().rstrip(".")
        out = []
        quoted = quoted_strings(feedback.text)
        if len(quoted) >= 2:
            out.append(
                EditCandidate(
                    operation=ReplaceLiteral(old=quoted[1], new=quoted[0]),
                    score=0.9,
                    feedback_type=EDIT,
                    pattern="instead-of-value",
                )
            )
        if main_table is not None:
            new_link = self._linker.link_column(main_table, new_phrase)
            old_link = self._linker.link_column(main_table, old_phrase)
            if new_link is not None and old_link is not None:
                if new_link.column.key != old_link.column.key:
                    out.append(
                        EditCandidate(
                            operation=ReplaceColumn(
                                old=old_link.column.name, new=new_link.column.name
                            ),
                            score=0.95,
                            feedback_type=EDIT,
                            pattern="instead-of-column",
                        )
                    )
        # Aggregate swap: "the total instead of the count".
        if "total" in new_phrase and "count" in old_phrase:
            out.append(
                EditCandidate(
                    operation=ReplaceAggregate("SUM", old_function="COUNT"),
                    score=0.85,
                    feedback_type=EDIT,
                    pattern="instead-of-aggregate",
                )
            )
        return out

    def _r_remove_select(self, text, feedback, previous, question, main_table):
        """'do not give descriptions' → drop a select column."""
        match = re.search(
            r"(?:do not|don't|no need to|please don't) "
            r"(?:give|show|include|return|display|list) (?:the |any )?(\w+)",
            text,
        )
        if match is None:
            match = re.search(
                r"(?:remove|drop|omit|leave out|exclude) (?:the )?(\w+)"
                r"(?: column| field)?",
                text,
            )
        if match is None or main_table is None:
            return []
        phrase = match.group(1)
        if phrase in ("duplicates", "duplicate"):
            return []
        link = self._linker.link_column(main_table, phrase)
        if link is None:
            return []
        return [
            EditCandidate(
                operation=RemoveSelectItem(column=link.column.name),
                score=0.9,
                feedback_type=REMOVE,
                pattern="remove-select",
            )
        ]

    def _r_add_select(self, text, feedback, previous, question, main_table):
        """'also show the X' → add a select column."""
        match = re.search(
            r"(?:also (?:show|include|give|return|display)|"
            r"add|include) (?:the |a )?([\w ]+?)"
            r"(?: as well| too| column| field)?$",
            text,
        )
        if match is None or main_table is None:
            return []
        phrase = match.group(1).strip()
        link = self._linker.link_column(main_table, phrase)
        if link is None:
            return []
        return [
            EditCandidate(
                operation=AddSelectItem(
                    expression=ast.ColumnRef(link.column.name)
                ),
                score=0.7,
                feedback_type=ADD,
                pattern="add-select",
            )
        ]

    def _r_order(self, text, feedback, previous, question, main_table):
        """Ordering feedback: add an ORDER BY or flip its direction."""
        out = []
        match = re.search(
            r"(?:order|sort) (?:the )?([\w ]+?) in (ascending|descending) order",
            text,
        )
        if match is not None and main_table is not None:
            phrase, direction_word = match.groups()
            link = self._linker.link_column(main_table, phrase.strip())
            if link is None and phrase.strip() in ("names", "results", "rows"):
                name_column = self._linker.name_column(main_table)
                if name_column is not None:
                    link_column = name_column
                else:
                    link_column = None
            else:
                link_column = link.column if link else None
            if link_column is not None:
                direction = (
                    ast.SortOrder.ASC
                    if direction_word == "ascending"
                    else ast.SortOrder.DESC
                )
                ftype = EDIT if previous.order_by else ADD
                out.append(
                    EditCandidate(
                        operation=SetOrderBy(
                            [ast.OrderItem(ast.ColumnRef(link_column.name), direction)]
                        ),
                        score=0.85,
                        feedback_type=ftype,
                        pattern="order-by",
                    )
                )
        match = re.search(
            r"\b(descending|ascending)\b(?: order)?", text
        )
        if match is not None and previous.order_by and not out:
            direction = (
                ast.SortOrder.DESC
                if match.group(1) == "descending"
                else ast.SortOrder.ASC
            )
            items = [
                ast.OrderItem(item.expression, direction)
                for item in previous.order_by
            ]
            out.append(
                EditCandidate(
                    operation=SetOrderBy(items),
                    score=0.8,
                    feedback_type=EDIT,
                    pattern="order-direction",
                )
            )
        if re.search(r"(highest|best|largest) first", text) and previous.order_by:
            items = [
                ast.OrderItem(item.expression, ast.SortOrder.DESC)
                for item in previous.order_by
            ]
            out.append(
                EditCandidate(
                    operation=SetOrderBy(items),
                    score=0.8,
                    feedback_type=EDIT,
                    pattern="order-direction",
                )
            )
        return out

    def _r_add_filter(self, text, feedback, previous, question, main_table):
        """'only include the ones whose status is active' → add a filter."""
        if main_table is None:
            return []
        patterns = (
            r"(?:only|just) (?:include|count|show|keep|list|want)?[\w ]*?"
            r"(?:with|whose|where) (?:the )?([\w ]+?) (?:is |= ?|equals )?'?([\w ]+?)'?$",
            r"\b([\w]+) (?:should be|must be|needs to be) '?([\w ]+?)'?$",
            r"\bmeans? (?:the )?([\w ]+?) (?:is|=) '?([\w ]+?)'?$",
            r"\bfilter (?:on|by) ([\w ]+?) (?:is |= ?)'?([\w ]+?)'?$",
        )
        for pattern in patterns:
            match = re.search(pattern, text)
            if match is None:
                continue
            column_phrase, value = match.groups()
            link = self._linker.link_column(main_table, column_phrase.strip())
            if link is None:
                continue
            value = value.strip().strip("'\".")
            condition = ast.BinaryOp(
                ast.BinaryOperator.EQ,
                ast.ColumnRef(link.column.name),
                ast.Literal(value),
            )
            existing = [
                c
                for c in conjuncts(previous.where)
                if _mentions_column(c, link.column.name)
            ]
            if existing:
                operation: EditOperation = ReplaceWhereConjunct(
                    matcher=_column_matcher(link.column.name),
                    condition=condition,
                )
                ftype = EDIT
            else:
                operation = AddWhereConjunct(condition=condition)
                ftype = ADD
            return [
                EditCandidate(
                    operation=operation,
                    score=0.9,
                    feedback_type=ftype,
                    pattern="add-filter",
                )
            ]
        return []

    def _r_remove_filter(self, text, feedback, previous, question, main_table):
        """'remove the condition on X' / 'do not filter by X'."""
        match = re.search(
            r"(?:remove|drop|ignore|do not use|don't use) the "
            r"(?:condition|filter|restriction) on (?:the )?([\w ]+)$",
            text,
        )
        if match is None:
            match = re.search(r"do(?:n't| not) filter (?:by|on) ([\w ]+)$", text)
        if match is None or main_table is None:
            return []
        link = self._linker.link_column(main_table, match.group(1).strip())
        if link is None:
            return []
        return [
            EditCandidate(
                operation=RemoveWhereConjunct(
                    matcher=_column_matcher(link.column.name),
                    description=f"remove the condition on {link.column.name}",
                ),
                score=0.9,
                feedback_type=REMOVE,
                pattern="remove-filter",
            )
        ]

    def _r_count_distinct(self, text, feedback, previous, question, main_table):
        """'count each value only once' / 'count the distinct X'."""
        if not re.search(
            r"(count (?:the )?(?:distinct|different|unique)|"
            r"count each [\w ]+ (?:only )?once|"
            r"(?:distinct|unique|different) (?:values|ones) (?:only|once)?)",
            text,
        ):
            return []
        return [
            EditCandidate(
                operation=ReplaceAggregate(
                    "COUNT", old_function="COUNT", distinct=True
                ),
                score=0.85,
                feedback_type=EDIT,
                pattern="count-distinct",
            )
        ]

    def _r_sum_not_count(self, text, feedback, previous, question, main_table):
        """'sum them up, do not count rows' → COUNT → SUM."""
        if not re.search(
            r"(\bsum\b|\badd (?:them |the [\w ]+ )?up\b|\btotal\b.*\bnot\b.*\bcount\b|"
            r"\bnot\b.*\bcount\b.*\bsum\b)",
            text,
        ):
            return []
        argument: Optional[ast.Expression] = None
        match = re.search(r"sum (?:up )?(?:the )?([\w ]+?)(?: values| column)?$", text)
        if match is not None and main_table is not None:
            link = self._linker.link_column(main_table, match.group(1).strip())
            if link is not None:
                argument = ast.ColumnRef(link.column.name)
        if argument is None:
            argument = _existing_count_argument(previous)
        if argument is None:
            return []
        return [
            EditCandidate(
                operation=ReplaceAggregate(
                    "SUM", new_argument=argument, old_function="COUNT"
                ),
                score=0.85,
                feedback_type=EDIT,
                pattern="sum-not-count",
            )
        ]

    def _r_distinct_rows(self, text, feedback, previous, question, main_table):
        """'remove duplicates' → SELECT DISTINCT."""
        if not re.search(
            r"(remove (?:the )?duplicates|each (?:value|one|row) (?:only )?once|"
            r"no duplicates|duplicates should not|only (?:the )?(?:distinct|unique|"
            r"different) values)",
            text,
        ):
            return []
        if previous.distinct:
            return []
        return [
            EditCandidate(
                operation=SetDistinct(True),
                score=0.85,
                feedback_type=ADD,
                pattern="distinct-rows",
            )
        ]

    def _r_replace_table(self, text, feedback, previous, question, main_table):
        """'audiences are stored in the segment table' → retarget the query."""
        match = re.search(
            r"(?:use|look (?:in|at)|query|check)(?: the)? ([\w ]+?) table", text
        )
        if match is None:
            match = re.search(
                r"(?:are|is) (?:stored |kept |held )?in the ([\w ]+?) table", text
            )
        if match is None:
            match = re.search(r"\bi mean(?:t)? the ([\w ]+?) table", text)
        if match is None or main_table is None:
            return []
        link = self._linker.link_table(match.group(1).strip())
        if link is None or link.table.key == main_table.key:
            return []
        operation = _retarget_query(self._linker, previous, main_table, link.table)
        if operation is None:
            return []
        return [
            EditCandidate(
                operation=operation,
                score=0.9,
                feedback_type=EDIT,
                pattern="replace-table",
            )
        ]

    def _r_fact_join(self, text, feedback, previous, question, main_table):
        """'... linked through the activation table' → rebuild a fact join."""
        match = re.search(
            r"(?:through|via|using|in) the ([\w ]+?) table", text
        )
        if match is None:
            return []
        fact_link = self._linker.link_table(match.group(1).strip())
        if fact_link is None or not fact_link.table.foreign_keys:
            return []
        if main_table is not None and fact_link.table.key == main_table.key:
            return []
        rebuilt = self._build_fact_join(
            fact_link.table, previous, question, main_table
        )
        if rebuilt is None:
            return []
        return [
            EditCandidate(
                operation=ReplaceQuery(new_query=rebuilt),
                score=0.88,
                feedback_type=ADD,
                pattern="fact-join",
            )
        ]

    def _build_fact_join(
        self,
        fact: Table,
        previous: ast.Select,
        question: str,
        main_table: Optional[Table],
    ) -> Optional[ast.Select]:
        """Canonical dim–fact–dim join: target names filtered by the other dim.

        The target dimension is the previous query's table (what the user
        asked to see); the filter dimension is the fact's other FK target;
        the filter value is the quoted entity in the original question.
        """
        if main_table is None:
            return None
        fks = fact.foreign_keys
        target_fk = None
        other_fk = None
        for fk in fks:
            if fk.ref_table.lower() == main_table.key:
                target_fk = fk
            else:
                other_fk = fk
        if target_fk is None or other_fk is None:
            return None
        other = self._schema.table(other_fk.ref_table)
        target_name = self._linker.name_column(main_table)
        other_name = self._linker.name_column(other)
        if target_name is None or other_name is None:
            return None
        values = quoted_strings(question)
        if not values:
            return None
        join = ast.Join(
            kind=ast.JoinKind.INNER,
            left=ast.Join(
                kind=ast.JoinKind.INNER,
                left=ast.TableRef(fact.name, alias="T1"),
                right=ast.TableRef(main_table.name, alias="T2"),
                condition=ast.BinaryOp(
                    ast.BinaryOperator.EQ,
                    ast.ColumnRef(target_fk.column, table="T1"),
                    ast.ColumnRef(target_fk.ref_column, table="T2"),
                ),
            ),
            right=ast.TableRef(other.name, alias="T3"),
            condition=ast.BinaryOp(
                ast.BinaryOperator.EQ,
                ast.ColumnRef(other_fk.column, table="T1"),
                ast.ColumnRef(other_fk.ref_column, table="T3"),
            ),
        )
        return ast.Select(
            items=[ast.SelectItem(ast.ColumnRef(target_name.name, table="T2"))],
            source=join,
            where=ast.BinaryOp(
                ast.BinaryOperator.EQ,
                ast.ColumnRef(other_name.name, table="T3"),
                ast.Literal(values[0]),
            ),
        )

    def _r_limit(self, text, feedback, previous, question, main_table):
        match = re.search(r"(?:limit (?:it )?to|only the first|top) (\d+)", text)
        if match is not None:
            return [
                EditCandidate(
                    operation=SetLimit(int(match.group(1))),
                    score=0.75,
                    feedback_type=EDIT if previous.limit else ADD,
                    pattern="limit",
                )
            ]
        if re.search(r"remove the limit|no limit|all of them, not just", text):
            if previous.limit is None:
                return []
            return [
                EditCandidate(
                    operation=SetLimit(None),
                    score=0.75,
                    feedback_type=REMOVE,
                    pattern="limit",
                )
            ]
        return []

    def _r_change_to(self, text, feedback, previous, question, main_table):
        """Terse 'change to X' — needs grounding; highlights provide it."""
        match = re.match(r"^change (?:it |this |that )?to '?([\w\- ]+?)'?$", text)
        if match is None:
            return []
        new_value = match.group(1).strip()
        if _YEAR_RE.fullmatch(new_value):
            # Year handled with date-literal awareness by _r_year already.
            return []
        literals = _string_literals_in(previous)
        if not literals:
            if main_table is None:
                return []
            status_column = self._linker.status_column(main_table)
            if status_column is None:
                return []
            condition = ast.BinaryOp(
                ast.BinaryOperator.EQ,
                ast.ColumnRef(status_column.name),
                ast.Literal(new_value),
            )
            score = 0.8 if feedback.highlight is not None else 0.4
            return [
                EditCandidate(
                    operation=AddWhereConjunct(condition=condition),
                    score=score,
                    feedback_type=ADD,
                    pattern="change-to-status",
                )
            ]
        target: Optional[str] = None
        if feedback.highlight is not None:
            for literal in literals:
                if literal in feedback.highlight.text:
                    target = literal
                    break
        if target is None:
            if len(literals) == 1:
                target = literals[0]
            else:
                # Ambiguous grounding: the model picks deterministically —
                # and sometimes wrongly. This is precisely what Table 3's
                # highlighting experiment measures.
                index = int(
                    stable_fraction("change-to-ground", text, len(literals))
                    * len(literals)
                )
                target = literals[min(index, len(literals) - 1)]
        return [
            EditCandidate(
                operation=ReplaceLiteral(old=target, new=new_value),
                score=0.7,
                feedback_type=EDIT,
                pattern="change-to",
            )
        ]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _date_years_in(query: ast.Select) -> list[str]:
    """Years found in date-shaped string literals, in walk order."""
    years = []
    for select in ast.walk_queries(query):
        for expr in _query_expressions(select):
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.Literal) and isinstance(node.value, str):
                    match = re.match(r"^((?:19|20)\d{2})-\d{2}-\d{2}", node.value)
                    if match and match.group(1) not in years:
                        years.append(match.group(1))
    return years


def _string_literals_in(query: ast.Select) -> list[str]:
    literals = []
    for select in ast.walk_queries(query):
        for expr in _query_expressions(select):
            for node in ast.walk_expressions(expr):
                if isinstance(node, ast.Literal) and isinstance(node.value, str):
                    if node.value not in literals:
                        literals.append(node.value)
    return literals


def _query_expressions(select: ast.Select) -> list[ast.Expression]:
    exprs = [item.expression for item in select.items]
    if select.where is not None:
        exprs.append(select.where)
    exprs.extend(select.group_by)
    if select.having is not None:
        exprs.append(select.having)
    exprs.extend(order.expression for order in select.order_by)
    return exprs


def _mentions_column(expr: ast.Expression, column: str) -> bool:
    for node in ast.walk_expressions(expr):
        if isinstance(node, ast.ColumnRef) and node.column.lower() == column.lower():
            return True
    return False


def _column_matcher(column: str):
    def matcher(expr: ast.Expression) -> bool:
        return _mentions_column(expr, column)

    return matcher


def _existing_count_argument(query: ast.Select) -> Optional[ast.Expression]:
    """The column a COUNT() aggregates, if any (COUNT(*) yields None)."""
    for item in query.items:
        for node in ast.walk_expressions(item.expression):
            if (
                isinstance(node, ast.FunctionCall)
                and node.name == "COUNT"
                and node.args
                and isinstance(node.args[0], ast.ColumnRef)
            ):
                return node.args[0]
    return None


def _retarget_query(
    linker: SchemaLinker,
    previous: ast.Select,
    old_table: Table,
    new_table: Table,
) -> Optional[EditOperation]:
    """Move a single-table query to a different table, remapping columns.

    Columns are remapped by NL similarity (``datasetname`` → ``segmentname``,
    ``name`` → ``name``); when a referenced column has no counterpart the
    retarget fails and the editor reports no usable edit.
    """
    import copy as _copy

    out = _copy.deepcopy(previous)
    source = out.source
    if isinstance(source, ast.TableRef) and (
        source.name.lower() == old_table.key
    ):
        source.name = new_table.name
    else:
        return None
    for expr in _query_expressions(out):
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.ColumnRef):
                if new_table.has_column(node.column):
                    continue
                replacement = _counterpart_column(linker, node.column, new_table)
                if replacement is None:
                    return None
                node.column = replacement
    return ReplaceQuery(new_query=out)


def _counterpart_column(
    linker: SchemaLinker, column_name: str, new_table: Table
) -> Optional[str]:
    # Strip the old table's prefix-style naming: datasetname → name.
    suffixes = ("name", "id", "type", "count", "time", "date", "status")
    for suffix in suffixes:
        if column_name.lower().endswith(suffix):
            for column in new_table.columns:
                if column.key.endswith(suffix):
                    if suffix == "id" and not column.primary_key:
                        continue
                    return column.name
    link = linker.link_column(new_table, column_name.replace("_", " "))
    if link is not None:
        return link.column.name
    return None
