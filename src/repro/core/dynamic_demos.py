"""Dynamic feedback-demonstration selection (the paper's §5 future work).

The paper proposes enhancing the routing mechanism "with dynamic example
selection based on query structure and feedback". This module implements
that: instead of appending the full fixed demonstration set for the routed
type (:class:`~repro.core.feedback.FeedbackDemoStore`), the dynamic store
ranks a pool of feedback demonstrations by

* textual similarity between the user's feedback and the demonstration's
  feedback (TF-IDF cosine), and
* structural overlap between the previous SQL and the demonstration's SQL
  (which clauses each query has: where/group/order/limit/aggregate/join),

and returns only the top-k most relevant revision examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.feedback import ADD, EDIT, REMOVE
from repro.errors import SqlError
from repro.llm.prompts import render_feedback_demo
from repro.nlp.vectorize import TfidfVectorizer, cosine_top_k
from repro.sql import ast
from repro.sql.parser import parse_query

#: Structure tags used for query-shape matching.
STRUCTURE_TAGS = ("where", "group", "order", "limit", "aggregate", "join", "distinct")


def query_structure(query: ast.Select) -> frozenset:
    """The set of structural features a query exhibits."""
    tags = set()
    if query.where is not None:
        tags.add("where")
    if query.group_by:
        tags.add("group")
    if query.order_by:
        tags.add("order")
    if query.limit is not None:
        tags.add("limit")
    if query.distinct:
        tags.add("distinct")
    for item in query.items:
        if any(ast.is_aggregate_call(n) for n in ast.walk_expressions(item.expression)):
            tags.add("aggregate")
    source = query.source
    while isinstance(source, ast.Join):
        tags.add("join")
        source = source.left
    return frozenset(tags)


@dataclass
class FeedbackDemonstration:
    """One revision example: question, SQL before/after, and the feedback."""

    question: str
    sql_before: str
    feedback: str
    sql_after: str
    feedback_type: str

    structure: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.structure:
            try:
                parsed = parse_query(self.sql_before)
            except SqlError:
                return
            if isinstance(parsed, ast.Select):
                self.structure = query_structure(parsed)

    def render(self) -> str:
        """The Figure 5 demonstration block."""
        return render_feedback_demo(
            question=self.question,
            sql=self.sql_before,
            feedback=self.feedback,
            revised_sql=self.sql_after,
        )


def default_pool() -> list[FeedbackDemonstration]:
    """A demonstration pool covering the revision patterns FISQL handles."""
    return [
        FeedbackDemonstration(
            question="how many audiences were created in January?",
            sql_before=(
                "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
                "'2023-01-01' AND createdtime < '2023-02-01'"
            ),
            feedback="we are in 2024",
            sql_after=(
                "SELECT COUNT(*) FROM hkg_dim_segment WHERE createdtime >= "
                "'2024-01-01' AND createdtime < '2024-02-01'"
            ),
            feedback_type=EDIT,
        ),
        FeedbackDemonstration(
            question=(
                "Show the name and the release year of the song by the "
                "youngest singer."
            ),
            sql_before=(
                "SELECT Name, Song_release_year FROM singer WHERE Age = "
                "(SELECT min(Age) FROM singer)"
            ),
            feedback="Provide song name instead of singer name",
            sql_after=(
                "SELECT Song_Name, Song_release_year FROM singer WHERE Age = "
                "(SELECT min(Age) FROM singer)"
            ),
            feedback_type=EDIT,
        ),
        FeedbackDemonstration(
            question="List the segments created in March 2024.",
            sql_before=(
                "SELECT segmentname, description FROM hkg_dim_segment WHERE "
                "createdtime >= '2024-03-01' AND createdtime < '2024-04-01'"
            ),
            feedback="do not give descriptions",
            sql_after=(
                "SELECT segmentname FROM hkg_dim_segment WHERE createdtime "
                ">= '2024-03-01' AND createdtime < '2024-04-01'"
            ),
            feedback_type=REMOVE,
        ),
        FeedbackDemonstration(
            question="List the names of all destinations.",
            sql_before="SELECT destinationname FROM hkg_dim_destination",
            feedback="order the names in ascending order.",
            sql_after=(
                "SELECT destinationname FROM hkg_dim_destination "
                "ORDER BY destinationname ASC"
            ),
            feedback_type=ADD,
        ),
        FeedbackDemonstration(
            question="How many datasets do we have?",
            sql_before="SELECT COUNT(*) FROM hkg_dim_dataset",
            feedback="only include datasets whose status is 'active'",
            sql_after=(
                "SELECT COUNT(*) FROM hkg_dim_dataset WHERE status = 'active'"
            ),
            feedback_type=ADD,
        ),
        FeedbackDemonstration(
            question="How many countries do the singers come from?",
            sql_before="SELECT COUNT(Country) FROM singer",
            feedback="count each country only once",
            sql_after="SELECT COUNT(DISTINCT Country) FROM singer",
            feedback_type=EDIT,
        ),
        FeedbackDemonstration(
            question="List the names of the top 5 products by price.",
            sql_before=(
                "SELECT name FROM product ORDER BY price ASC LIMIT 5"
            ),
            feedback="sort in descending order, please",
            sql_after=(
                "SELECT name FROM product ORDER BY price DESC LIMIT 5"
            ),
            feedback_type=EDIT,
        ),
        FeedbackDemonstration(
            question="What are the color values of the cars?",
            sql_before="SELECT color FROM car",
            feedback="remove duplicates from the results",
            sql_after="SELECT DISTINCT color FROM car",
            feedback_type=ADD,
        ),
    ]


class DynamicFeedbackDemoStore:
    """Selects the k most relevant revision demonstrations.

    Drop-in alternative to the static
    :class:`~repro.core.feedback.FeedbackDemoStore`: ``select`` combines
    feedback-text similarity with query-structure overlap; ``for_type``
    keeps the static interface for compatibility.
    """

    #: Weight of textual similarity vs structural overlap.
    TEXT_WEIGHT = 0.7

    def __init__(
        self, pool: Optional[Sequence[FeedbackDemonstration]] = None, top_k: int = 2
    ) -> None:
        self._pool = list(pool) if pool is not None else default_pool()
        self._top_k = top_k
        self._vectorizer = TfidfVectorizer()
        if self._pool:
            self._matrix = self._vectorizer.fit_transform(
                [demo.feedback for demo in self._pool]
            )
        else:
            self._matrix = np.zeros((0, 0))

    def __len__(self) -> int:
        return len(self._pool)

    def select(
        self,
        feedback_text: str,
        previous_sql: str = "",
        feedback_type: Optional[str] = None,
        top_k: Optional[int] = None,
    ) -> list[str]:
        """Rank the pool and return the top-k rendered Figure 5 blocks."""
        if not self._pool:
            return []
        k = top_k or self._top_k
        structure: frozenset = frozenset()
        if previous_sql:
            try:
                parsed = parse_query(previous_sql)
                if isinstance(parsed, ast.Select):
                    structure = query_structure(parsed)
            except SqlError:
                pass

        query_vec = self._vectorizer.transform([feedback_text])[0]
        text_scores = self._matrix @ query_vec
        scored = []
        for index, demo in enumerate(self._pool):
            text_score = float(text_scores[index])
            if structure or demo.structure:
                union = structure | demo.structure
                overlap = (
                    len(structure & demo.structure) / len(union) if union else 1.0
                )
            else:
                overlap = 1.0
            score = self.TEXT_WEIGHT * text_score + (1 - self.TEXT_WEIGHT) * overlap
            if feedback_type is not None and demo.feedback_type == feedback_type:
                score += 0.25  # routing prior, refined by relevance
            scored.append((score, index))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [self._pool[index].render() for _score, index in scored[:k]]

    def for_type(self, feedback_type: str) -> list[str]:
        """Static-interface compatibility: all demos of one type."""
        return [
            demo.render()
            for demo in self._pool
            if demo.feedback_type == feedback_type
        ]

    def generic(self) -> list[str]:
        """Static-interface compatibility: one demo per type."""
        seen = set()
        out = []
        for demo in self._pool:
            if demo.feedback_type not in seen:
                seen.add(demo.feedback_type)
                out.append(demo.render())
        return out
