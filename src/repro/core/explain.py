"""Step-by-step natural-language explanations of SQL queries.

The Assistant's response includes "(c) a natural language explanation of
the steps undertaken to answer the user query" — this module generates it
from the AST. The simulated user reads these explanations (it is part of
the information annotators were allowed to see).
"""

from __future__ import annotations

from repro.sql import ast
from repro.sql.analysis import conjuncts
from repro.sql.printer import print_expression

_AGG_PHRASES = {
    "COUNT": "count the number of rows",
    "SUM": "sum the values",
    "AVG": "average the values",
    "MIN": "take the smallest value",
    "MAX": "take the largest value",
}


def explain_query(query: ast.Query) -> list[str]:
    """Return explanation steps for a query."""
    if isinstance(query, ast.SetOperation):
        return (
            explain_query(query.left)
            + [f"then combine with a second query ({query.op.value})"]
            + explain_query(query.right)
        )
    return _explain_select(query)


def _explain_select(select: ast.Select) -> list[str]:
    steps: list[str] = []
    steps.append(f"First, consider all the rows of {_source_phrase(select.source)}.")
    if select.where is not None:
        for condition in conjuncts(select.where):
            steps.append(
                f"Then, keep only those where {_condition_phrase(condition)}."
            )
    if select.group_by:
        keys = ", ".join(print_expression(e) for e in select.group_by)
        steps.append(f"Group the remaining rows by {keys}.")
    if select.having is not None:
        steps.append(
            f"Keep only groups where {_condition_phrase(select.having)}."
        )
    steps.append(_projection_phrase(select))
    if select.order_by:
        parts = []
        for item in select.order_by:
            direction = (
                "descending" if item.order is ast.SortOrder.DESC else "ascending"
            )
            parts.append(f"{print_expression(item.expression)} ({direction})")
        steps.append("Sort the results by " + ", ".join(parts) + ".")
    if select.limit is not None:
        if select.limit == 1:
            steps.append("Finally, return only the first result.")
        else:
            steps.append(f"Finally, return only the first {select.limit} results.")
    return steps


def _source_phrase(source) -> str:
    if source is None:
        return "(no table)"
    if isinstance(source, ast.TableRef):
        return f"the {source.name} table"
    if isinstance(source, ast.Join):
        tables = _tables_in(source)
        if len(tables) == 2:
            return f"the {tables[0]} table joined with the {tables[1]} table"
        return "the joined tables " + ", ".join(tables)
    if isinstance(source, ast.SubquerySource):
        return "a derived sub-result"
    return "the data"


def _tables_in(source) -> list[str]:
    found: list[str] = []
    stack = [source]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.TableRef):
            found.append(node.name)
        elif isinstance(node, ast.Join):
            stack.extend((node.right, node.left))
    return list(reversed(found))


_OP_PHRASES = {
    ast.BinaryOperator.EQ: "equals",
    ast.BinaryOperator.NE: "does not equal",
    ast.BinaryOperator.LT: "is less than",
    ast.BinaryOperator.LE: "is at most",
    ast.BinaryOperator.GT: "is greater than",
    ast.BinaryOperator.GE: "is at least",
}


def _condition_phrase(condition: ast.Expression) -> str:
    if isinstance(condition, ast.BinaryOp) and condition.op in _OP_PHRASES:
        left = print_expression(condition.left)
        right = print_expression(condition.right)
        if isinstance(condition.right, ast.ScalarSubquery):
            right = "the computed sub-result"
        return f"{left} {_OP_PHRASES[condition.op]} {right}"
    if isinstance(condition, ast.Between):
        return (
            f"{print_expression(condition.operand)} is between "
            f"{print_expression(condition.low)} and "
            f"{print_expression(condition.high)}"
        )
    if isinstance(condition, ast.Like):
        return (
            f"{print_expression(condition.operand)} matches "
            f"{print_expression(condition.pattern)}"
        )
    if isinstance(condition, (ast.InList, ast.InSubquery)):
        return f"{print_expression(condition.operand)} is in the allowed set"
    if isinstance(condition, ast.IsNull):
        negation = "not " if condition.negated else ""
        return f"{print_expression(condition.operand)} is {negation}missing"
    return print_expression(condition)


def _projection_phrase(select: ast.Select) -> str:
    rendered = []
    for item in select.items:
        expr = item.expression
        if isinstance(expr, ast.FunctionCall) and expr.name in _AGG_PHRASES:
            if expr.args and isinstance(expr.args[0], ast.ColumnRef):
                target = f" of {expr.args[0].column}"
            else:
                target = ""
            distinct = " (distinct values only)" if expr.distinct else ""
            rendered.append(f"{_AGG_PHRASES[expr.name]}{target}{distinct}")
        elif isinstance(expr, ast.Star):
            rendered.append("return every column")
        else:
            rendered.append(f"return {print_expression(expr)}")
    head = "Next, " if select.where is not None or select.group_by else "Then, "
    distinct_note = " keeping each distinct result once" if select.distinct else ""
    return head + "; ".join(rendered) + distinct_note + "."


def explanation_text(query: ast.Query) -> str:
    """Explanation steps joined as a bulleted block."""
    return "\n".join(f"- {step}" for step in explain_query(query))
