"""Small shared utilities."""

from __future__ import annotations

import hashlib


def stable_fraction(*parts: object) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from arbitrary parts.

    Used to model the *calibrated* stochasticity of LLM behaviour (e.g. a
    demonstration set that covers a phrasing only some of the time) without
    process-level randomness: the same inputs always give the same value,
    so every experiment is exactly reproducible.
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def stable_choice(options: list, *parts: object):
    """Deterministically pick one of ``options`` keyed by ``parts``."""
    if not options:
        raise ValueError("no options to choose from")
    index = int(stable_fraction(*parts) * len(options))
    return options[min(index, len(options) - 1)]
