"""TF-IDF vectorizer + cosine retrieval, built on numpy.

This powers the RAG demonstration retriever: demonstrations are embedded
once; queries retrieve nearest neighbours by cosine similarity.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.nlp.stem import stem
from repro.nlp.tokenize import tokenize


class TfidfVectorizer:
    """Fit a TF-IDF model on a corpus, then embed arbitrary texts.

    Example:
        >>> vec = TfidfVectorizer()
        >>> m = vec.fit_transform(["count the singers", "list song names"])
        >>> m.shape[0]
        2
    """

    def __init__(self, use_stemming: bool = True) -> None:
        self._use_stemming = use_stemming
        self._vocabulary: dict[str, int] = {}
        self._idf: Optional[np.ndarray] = None

    def _analyze(self, text: str) -> list[str]:
        tokens = tokenize(text)
        if self._use_stemming:
            tokens = [stem(token) for token in tokens]
        return tokens

    def fit(self, corpus: Sequence[str]) -> "TfidfVectorizer":
        """Learn vocabulary and IDF weights from ``corpus``."""
        document_frequency: dict[str, int] = {}
        analyzed = [self._analyze(text) for text in corpus]
        for tokens in analyzed:
            for token in set(tokens):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        self._vocabulary = {
            token: index for index, token in enumerate(sorted(document_frequency))
        }
        n_docs = max(len(corpus), 1)
        idf = np.zeros(len(self._vocabulary), dtype=np.float64)
        for token, index in self._vocabulary.items():
            idf[index] = math.log((1 + n_docs) / (1 + document_frequency[token])) + 1.0
        self._idf = idf
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        """Embed texts into L2-normalized TF-IDF rows."""
        if self._idf is None:
            raise ValueError("vectorizer is not fitted")
        matrix = np.zeros((len(texts), len(self._vocabulary)), dtype=np.float64)
        for row, text in enumerate(texts):
            counts: dict[int, int] = {}
            for token in self._analyze(text):
                index = self._vocabulary.get(token)
                if index is not None:
                    counts[index] = counts.get(index, 0) + 1
            if not counts:
                continue
            for index, count in counts.items():
                matrix[row, index] = (1 + math.log(count)) * self._idf[index]
            norm = np.linalg.norm(matrix[row])
            if norm > 0:
                matrix[row] /= norm
        return matrix

    def fit_transform(self, corpus: Sequence[str]) -> np.ndarray:
        """Fit on the corpus and return its embedding matrix."""
        self.fit(corpus)
        return self.transform(corpus)

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary)


def cosine_top_k(
    query: np.ndarray, matrix: np.ndarray, k: int
) -> list[tuple[int, float]]:
    """Indices and scores of the ``k`` nearest rows to ``query`` (cosine).

    Rows are assumed L2-normalized (as produced by the vectorizer), so the
    dot product is the cosine similarity.
    """
    if matrix.shape[0] == 0:
        return []
    scores = matrix @ query
    k = min(k, matrix.shape[0])
    top = np.argpartition(-scores, k - 1)[:k]
    ranked = top[np.argsort(-scores[top], kind="stable")]
    return [(int(i), float(scores[i])) for i in ranked]
