"""Word tokenization and normalization for questions and feedback."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|\d+(?:\.\d+)?|'[^']*'|\"[^\"]*\"")

#: Words that carry no schema-linking signal.
STOPWORDS = frozenset(
    """
    a an the of for to in on at by with and or is are was were be been am
    do does did done can could shall should will would may might must
    what which who whom whose when where why how many much there their
    this that these those it its i we you they he she
    me my your our his her them us
    show list give find get tell return display
    please all each every any some
    """.split()
)


def normalize(text: str) -> str:
    """Lower-case and collapse whitespace."""
    return re.sub(r"\s+", " ", text.strip().lower())


def tokenize(text: str) -> list[str]:
    """Split text into lower-cased word/number/quoted-string tokens.

    Quoted substrings stay intact (with quotes stripped) so that literal
    values like 'ABC segment' survive as a single token.
    """
    tokens = []
    for match in _WORD_RE.finditer(text):
        token = match.group(0)
        if token.startswith(("'", '"')):
            tokens.append(token[1:-1])
        else:
            tokens.append(token.lower())
    return tokens


def content_tokens(text: str) -> list[str]:
    """Tokens with stopwords removed."""
    return [token for token in tokenize(text) if token not in STOPWORDS]


def ngrams(tokens: list[str], max_n: int = 3) -> list[tuple[int, int, str]]:
    """All n-grams up to ``max_n`` as (start, end, phrase) triples."""
    grams = []
    for n in range(1, max_n + 1):
        for start in range(0, len(tokens) - n + 1):
            phrase = " ".join(tokens[start : start + n])
            grams.append((start, start + n, phrase))
    return grams


def quoted_strings(text: str) -> list[str]:
    """Extract quoted literals (single or double quotes) from text."""
    return re.findall(r"'([^']*)'", text) + re.findall(r'"([^"]*)"', text)


def numbers_in(text: str) -> list[float]:
    """Extract numeric values mentioned in text."""
    return [float(m) for m in re.findall(r"\d+(?:\.\d+)?", text)]
