"""String and token-set similarity measures."""

from __future__ import annotations

from repro.nlp.stem import stem
from repro.nlp.tokenize import tokenize


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def normalized_edit_similarity(a: str, b: str) -> float:
    """1 - edit_distance / max_len, in [0, 1]."""
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def jaccard(a: set, b: set) -> float:
    """Jaccard similarity of two sets."""
    if not a and not b:
        return 1.0
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def string_similarity(a: str, b: str) -> float:
    """Blend of stemmed-token Jaccard and character edit similarity.

    Used for schema linking: 'release year' vs 'Song_release_year' should
    score high; unrelated phrases should score near zero.
    """
    a_norm = a.lower().replace("_", " ")
    b_norm = b.lower().replace("_", " ")
    if a_norm == b_norm:
        return 1.0
    # Identifiers often squash words: "profile count" vs "profilecount".
    if a_norm.replace(" ", "") == b_norm.replace(" ", ""):
        return 1.0
    a_tokens = {stem(t) for t in tokenize(a_norm)}
    b_tokens = {stem(t) for t in tokenize(b_norm)}
    token_score = jaccard(a_tokens, b_tokens)
    # containment bonus: all of one side's tokens inside the other
    containment = 0.0
    if a_tokens and b_tokens:
        overlap = len(a_tokens & b_tokens)
        containment = overlap / min(len(a_tokens), len(b_tokens))
    edit_score = normalized_edit_similarity(
        a_norm.replace(" ", ""), b_norm.replace(" ", "")
    )
    return max(0.6 * token_score + 0.4 * edit_score, 0.85 * containment)
