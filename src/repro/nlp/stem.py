"""A light rule-based stemmer (a tiny Porter-style suffix stripper).

Good enough for matching schema vocabulary ("audiences" -> "audience",
"created" -> "create"), without external models. The important property is
*consistency*: plural and verb suffixes are stripped in sequence, so
``stem("paintings") == stem("painting") == "paint"`` — both sides of a
schema-linking comparison land on the same stem.
"""

from __future__ import annotations

_IRREGULAR = {
    "people": "person",
    "children": "child",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "mice": "mouse",
    "geese": "goose",
    "movies": "movie",
    "countries": "country",
    "cities": "city",
    "criteria": "criterion",
    "data": "data",
    "media": "media",
    "series": "series",
    "status": "status",
    "has": "have",
}


def _strip_plural(word: str) -> str:
    if len(word) <= 3:
        return word
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith(("xes", "ches", "shes")):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s") and not word.endswith(("us", "is")):
        return word[:-1]
    return word


def _strip_verb_suffix(word: str) -> str:
    if word.endswith("ing") and len(word) > 5:
        base = word[:-3]
        if len(base) >= 3 and base[-1] == base[-2]:
            base = base[:-1]
        return base if len(base) >= 3 else word
    if word.endswith("ed") and len(word) > 4:
        base = word[:-2]
        if len(base) >= 3 and base[-1] == base[-2]:
            base = base[:-1]
        if base.endswith(("at", "iz", "bl", "creat")):
            base += "e"
        return base if len(base) >= 3 else word
    return word


def stem(word: str) -> str:
    """Return a crude stem of ``word`` (lower-cased)."""
    word = word.lower()
    if word in _IRREGULAR:
        return _IRREGULAR[word]
    if len(word) <= 3:
        return word
    base = _strip_plural(word)
    if base in _IRREGULAR:
        return _IRREGULAR[base]
    return _strip_verb_suffix(base)


def stem_tokens(tokens: list[str]) -> list[str]:
    """Stem every token in a list."""
    return [stem(token) for token in tokens]
