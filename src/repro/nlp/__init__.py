"""Small self-contained NLP toolkit (tokenization, stemming, similarity,
TF-IDF retrieval) used by the NL2SQL stack and the RAG retriever."""

from repro.nlp.similarity import jaccard, levenshtein, string_similarity
from repro.nlp.stem import stem, stem_tokens
from repro.nlp.tokenize import ngrams, normalize, tokenize
from repro.nlp.vectorize import TfidfVectorizer

__all__ = [
    "TfidfVectorizer",
    "jaccard",
    "levenshtein",
    "ngrams",
    "normalize",
    "stem",
    "stem_tokens",
    "string_similarity",
    "tokenize",
]
